(** The client half of the handshake engine — in this project usually
    the scanner, so beyond completing handshakes it surfaces everything
    the measurements need (session IDs, tickets and their STEK key names,
    server key-exchange values, certificate chains with trust results). *)

type t

val create : ?prefer_x25519:bool -> config:Config.client_config -> rng:Crypto.Drbg.t -> unit -> t
(** [prefer_x25519] ranks the X25519 named group (29) first in the
    supported_groups extension; servers honor the client's order. *)

val rng : t -> Crypto.Drbg.t
(** The client's private DRBG. Campaign checkpoints snapshot its state
    so a resumed scan draws the same key shares an uninterrupted one
    would. *)

(** What the client offers for resumption. Ticket offers carry the cached
    session state (master secret) kept alongside the opaque ticket, as
    RFC 5077 requires. *)
type offer =
  | Fresh
  | Offer_session_id of Session.t
  | Offer_ticket of { ticket : string; session : Session.t }

type state
(** Per-connection client state between flights. *)

val hello : t -> now:int -> hostname:string -> offer:offer -> Handshake_msg.t * state

type full_continuation

val continuation_master : full_continuation -> string
(** The master secret the handshake will establish; wire-level drivers
    need it to derive record keys before the closing flights. *)

type flight_result =
  | Abbreviated of {
      client_finished : Handshake_msg.t;
      session : Session.t;
      new_ticket : (int * string) option;
      session_id : string;
    }
      (** The server resumed; forward [client_finished] to finish. *)
  | Continue_full of {
      to_send : Handshake_msg.t list;  (** [CKE; Finished] *)
      continuation : full_continuation;
      cert_chain : Cert.t list;
      trust : (Cert.t, Cert.validation_error) result;
      server_kex_public : string option;
          (** the (EC)DHE server value, as the scanner records it *)
      session_id : string;
    }

val handle_server_flight : state -> Handshake_msg.t list -> (flight_result, string) result

val finish_full :
  full_continuation ->
  now:int ->
  Handshake_msg.t list ->
  (Session.t * (int * string) option, string) result
(** Process the server's closing [(NST); Finished]; returns the session
    and any issued ticket (lifetime hint, ticket bytes). *)
