(* Bounded client-side resumption store. See the interface for the two
   invariants (lifetime-checked offers, LRU capacity bound). Recency is
   a monotonic touch counter rather than wall time: two operations in
   the same simulated second must still order deterministically. *)

type entry = {
  mutable e_session : (Session.t * int) option; (* state, stored_at *)
  mutable e_ticket : (string * Session.t * int * int) option;
      (* ticket bytes, session state, lifetime hint, issued_at *)
  mutable e_touched : int;
}

type t = {
  session_lifetime : int;
  ticket_lifetime_cap : int;
  cap : int;
  entries : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable evicted : int;
  mutable expired : int;
}

let create ?(session_lifetime = 86_400) ?(ticket_lifetime_cap = 0) ~capacity () =
  if capacity <= 0 then invalid_arg "Client_store.create: non-positive capacity";
  if session_lifetime < 0 || ticket_lifetime_cap < 0 then
    invalid_arg "Client_store.create: negative lifetime";
  {
    session_lifetime;
    ticket_lifetime_cap;
    cap = capacity;
    entries = Hashtbl.create (min capacity 64);
    tick = 0;
    evicted = 0;
    expired = 0;
  }

let capacity t = t.cap
let size t = Hashtbl.length t.entries
let evictions t = t.evicted
let expirations t = t.expired

let touch t e =
  t.tick <- t.tick + 1;
  e.e_touched <- t.tick

(* Effective ticket lifetime: the advertised hint, tightened by the
   client-policy cap when set. A hint of 0 means "unspecified" (RFC
   5077), in which case only the cap bounds reuse; with neither, the
   ticket never self-expires and only eviction retires it. *)
let ticket_deadline t ~hint ~issued_at =
  match (hint > 0, t.ticket_lifetime_cap > 0) with
  | true, true -> Some (issued_at + min hint t.ticket_lifetime_cap)
  | true, false -> Some (issued_at + hint)
  | false, true -> Some (issued_at + t.ticket_lifetime_cap)
  | false, false -> None

(* Drop expired components. An entry is live at its deadline and dead
   one second past it: "never offer past the advertised lifetime" makes
   the boundary second the last legal offer. *)
let purge t ~now e =
  (match e.e_ticket with
  | Some (_, _, hint, issued_at) -> (
      match ticket_deadline t ~hint ~issued_at with
      | Some deadline when now > deadline ->
          e.e_ticket <- None;
          t.expired <- t.expired + 1
      | _ -> ())
  | None -> ());
  match e.e_session with
  | Some (_, stored_at) when now > stored_at + t.session_lifetime ->
      e.e_session <- None;
      t.expired <- t.expired + 1
  | _ -> ()

let offer t ~now ~scope =
  match Hashtbl.find_opt t.entries scope with
  | None -> Client.Fresh
  | Some e -> (
      purge t ~now e;
      if e.e_session = None && e.e_ticket = None then begin
        Hashtbl.remove t.entries scope;
        Client.Fresh
      end
      else begin
        touch t e;
        match e.e_ticket with
        | Some (ticket, session, _, _) -> Client.Offer_ticket { ticket; session }
        | None -> (
            match e.e_session with
            | Some (s, _) when Session.id s <> "" -> Client.Offer_session_id s
            | _ -> Client.Fresh)
      end)

let holds t ~now ~scope =
  match Hashtbl.find_opt t.entries scope with
  | None -> false
  | Some e ->
      purge t ~now e;
      if e.e_session = None && e.e_ticket = None then begin
        Hashtbl.remove t.entries scope;
        false
      end
      else
        e.e_ticket <> None
        || (match e.e_session with Some (s, _) -> Session.id s <> "" | None -> false)

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun scope e ->
      match !victim with
      | Some (_, best) when best.e_touched <= e.e_touched -> ()
      | _ -> victim := Some (scope, e))
    t.entries;
  match !victim with
  | Some (scope, _) ->
      Hashtbl.remove t.entries scope;
      t.evicted <- t.evicted + 1
  | None -> ()

let note t ~now ~scope ~session ~ticket =
  let fresh_session =
    match session with Some s when Session.id s <> "" -> Some (s, now) | _ -> None
  in
  let fresh_ticket =
    match (ticket, session) with
    | Some (hint, bytes), Some s -> Some (bytes, s, hint, now)
    | _ -> None
  in
  if fresh_session <> None || fresh_ticket <> None then begin
    let e =
      match Hashtbl.find_opt t.entries scope with
      | Some e -> e
      | None ->
          if Hashtbl.length t.entries >= t.cap then evict_lru t;
          let e = { e_session = None; e_ticket = None; e_touched = 0 } in
          Hashtbl.add t.entries scope e;
          e
    in
    (match fresh_session with Some _ as s -> e.e_session <- s | None -> ());
    (match fresh_ticket with Some _ as tk -> e.e_ticket <- tk | None -> ());
    purge t ~now e;
    touch t e
  end

let drop t ~scope = Hashtbl.remove t.entries scope
