(* Bounded-restart supervision for campaign workers.

   A shard that raises mid-scan should not take the whole campaign down:
   the supervisor catches the exception, reports it, and re-runs the
   shard up to a bounded number of restarts. Two exceptions deliberately
   punch through:

   - [Killed] models whole-process death (used by tests and the chaos
     hook to simulate SIGKILL) — a supervisor that "survived" a kill
     would be lying about what crash-recovery covers;
   - [Checkpoint.Mismatch] means determinism itself is broken, and
     retrying a nondeterministic shard would only launder the bug. *)

exception Killed

type policy = { max_restarts : int }

let default = { max_restarts = 2 }

let supervised ?(on_crash = fun ~attempt:_ _ -> ()) policy ~attempt:f =
  let rec go attempt =
    match f attempt with
    | v -> Ok v
    | exception ((Killed | Checkpoint.Mismatch _) as e) -> raise e
    | exception e ->
        on_crash ~attempt e;
        if attempt < policy.max_restarts then go (attempt + 1) else Error e
  in
  go 0
