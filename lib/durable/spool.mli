(** Append-only block log for streaming archives.

    Where {!Atomic_io} rewrites a whole artifact atomically (right for
    end-of-run outputs), a spool appends framed blocks to one open file
    and flushes after each block, so a long campaign can emit one block
    per scan day in O(block) rather than O(file). The framing lets the
    reader distinguish a complete spool from one torn by a crash: torn
    trailing bytes are dropped and the valid block prefix returned, and
    the resume path re-emits the missing tail. *)

type writer

val create : string -> writer
(** [create path] truncates [path] and starts a fresh spool. The
    previous content is intentionally discarded: a rerun (including a
    checkpoint resume, which replays all completed days) re-emits every
    block, so the spool is byte-identical whether or not the run was
    interrupted. *)

val add_block : writer -> string -> unit
(** Append one framed block and flush it to the OS. Raises
    [Invalid_argument] after {!close}. *)

val close : writer -> unit
(** Write the end-of-spool footer, fsync, and close. Idempotent. A spool
    without its footer reads back as incomplete. *)

val read : string -> (string list * bool, string) result
(** [read path] returns [(blocks, complete)]: the longest valid prefix
    of blocks, and whether the footer was present with a matching block
    count. Torn or unrecognized trailing frames are dropped silently
    (they are exactly what a crash leaves behind); only a missing or
    malformed file header is an [Error]. *)
