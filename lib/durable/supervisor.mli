(** Bounded-restart supervision for campaign workers. *)

exception Killed
(** Simulated whole-process death (SIGKILL analog) used by tests and
    chaos hooks. Never caught by {!supervised}: recovery from a kill is
    the resume path's job, not the in-process supervisor's. *)

type policy = { max_restarts : int }

val default : policy
(** Two restarts — three attempts total — before a shard is abandoned. *)

val supervised :
  ?on_crash:(attempt:int -> exn -> unit) ->
  policy ->
  attempt:(int -> 'a) ->
  ('a, exn) result
(** [supervised policy ~attempt] runs [attempt 0]; if it raises, the
    exception is passed to [on_crash] and the work is re-run as
    [attempt 1], [attempt 2], … up to [policy.max_restarts] restarts.
    Returns [Error e] with the last exception once restarts are
    exhausted. {!Killed} and {!Checkpoint.Mismatch} are re-raised
    immediately rather than absorbed. *)
