(* Versioned on-disk layout for resumable campaigns.

   A checkpoint directory holds one manifest plus one subdirectory per
   *stream* — an independent sequence of per-day state snapshots. A
   serial campaign has a single stream ("serial"); a parallel campaign
   has one stream per shard ("shard-0007"). Layout:

     <dir>/manifest            k=v lines describing the run (version,
                               mode, seed, days, …), written once
     <dir>/<stream>/day-0004.ckpt
                               opaque payload for virtual day 4, written
                               by the campaign after that day completes

   Every file goes through Atomic_io, so a crash mid-write leaves either
   the previous day's files or nothing — never a torn snapshot. Readers
   treat any unreadable/corrupt day file as the end of the valid prefix,
   which is exactly the fallback the resume path wants: continue from
   the last day that verifies. *)

exception Mismatch of string
(* Raised when replayed computation diverges from a recorded checkpoint
   (wrong seed, wrong world, code drift). This is a determinism-contract
   violation, not an I/O problem: it must abort the run loudly rather
   than be retried or degraded, so supervision deliberately re-raises
   it. *)

let mismatch fmt = Printf.ksprintf (fun s -> raise (Mismatch s)) fmt

type t = { dir : string }

let dir t = t.dir

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

(* --- Manifest ---------------------------------------------------------------- *)

let version = 1
let manifest_path dir = Filename.concat dir "manifest"

let render_manifest kvs =
  let kvs = ("version", string_of_int version) :: kvs in
  let b = Buffer.create 256 in
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s=%s\n" k v)) kvs;
  Buffer.contents b

let parse_kv_lines content =
  String.split_on_char '\n' content
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line '=' with
           | None -> None
           | Some i ->
               Some (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1)))

let manifest t =
  match Atomic_io.read (manifest_path t.dir) with
  | Error e -> Error (Atomic_io.error_to_string ~what:"manifest" e)
  | Ok content -> (
      let kvs = parse_kv_lines content in
      match List.assoc_opt "version" kvs with
      | Some v when int_of_string_opt v = Some version -> Ok kvs
      | Some v -> Error (Printf.sprintf "manifest: unsupported checkpoint version %s" v)
      | None -> Error "manifest: no version field")

let find t key = match manifest t with Ok kvs -> List.assoc_opt key kvs | Error _ -> None

(* [init] is idempotent for the same run parameters: creating a store
   where a matching manifest already exists is how a resumed campaign
   re-attaches. A *different* manifest means the directory belongs to
   another run, and silently mixing day files from two runs would be far
   worse than refusing. *)
let init ~dir ~manifest:kvs =
  mkdir_p dir;
  let path = manifest_path dir in
  let fresh = render_manifest kvs in
  if Sys.file_exists path then
    match Atomic_io.read path with
    | Ok existing when existing = fresh -> Ok { dir }
    | Ok _ ->
        Error
          (Printf.sprintf
             "checkpoint directory %s already holds a different campaign (manifest mismatch)" dir)
    | Error e -> Error (Atomic_io.error_to_string ~what:(path ^ ": manifest") e)
  else begin
    Atomic_io.write path fresh;
    Ok { dir }
  end

let attach ~dir =
  if not (Sys.file_exists (manifest_path dir)) then
    Error (Printf.sprintf "%s: no checkpoint manifest found" dir)
  else
    match manifest { dir } with Ok _ -> Ok { dir } | Error e -> Error (dir ^ ": " ^ e)

(* --- Streams ----------------------------------------------------------------- *)

type stream = { store : t; name : string }

let stream store name =
  let s = { store; name } in
  mkdir_p (Filename.concat store.dir name);
  s

let day_path s ~day = Filename.concat (Filename.concat s.store.dir s.name) (Printf.sprintf "day-%04d.ckpt" day)

let write_day s ~day payload = Atomic_io.write (day_path s ~day) payload

let read_day s ~day =
  let path = day_path s ~day in
  if not (Sys.file_exists path) then Error (Atomic_io.Io (path ^ ": no such checkpoint"))
  else Atomic_io.read path

(* The resume contract: day k's snapshot is only trustworthy if every
   snapshot before it also verifies, because day k's state builds on the
   days before it. So the usable history is the longest contiguous
   verified prefix starting at day 0 — a corrupt day-3 file limits
   resume to day 3 even if day-4 reads fine. *)
let valid_prefix ?(decode = fun ~day:_ _ -> true) s ~days =
  let rec go day =
    if day >= days then day
    else
      match read_day s ~day with
      | Ok payload when decode ~day payload -> go (day + 1)
      | Ok _ | Error _ -> day
  in
  go 0
