(* Crash-safe file persistence for every artifact the project archives:
   campaign CSVs, checkpoint day files, bench JSON. Two disciplines, one
   writer:

   - *atomicity*: content goes to a same-directory temp file which is
     fsynced and then renamed over the destination, so a reader (or a
     resumed campaign) only ever sees the old complete file or the new
     complete file — never a half-written one. A failure mid-write
     removes the temp file; nothing stray is left behind.
   - *integrity*: the payload is framed by a header line and a footer
     line carrying the byte count and per-block checksums, so [read] can
     distinguish a complete file from one truncated by a crash or
     silently corrupted at rest, and can name the byte offset where the
     damage starts.

   The frame is line-oriented on purpose: durable files remain greppable
   text, and the header line doubles as a format marker so pre-durability
   archives (no header) are recognized and readable via [read_any]. *)

let header = "#tlsharm-durable v1\n"
let footer_tag = "#tlsharm-footer v1 "

(* 64 KiB blocks: fine enough that a corruption report localizes the
   damage usefully, coarse enough that the footer of a 100 MB archive
   stays a few tens of KB. *)
let block_size = 65536

(* Per-block tag: the first 16 hex characters (64 bits) of SHA-256 —
   ample for corruption detection, compact in the footer. *)
let block_tag s = String.sub (Wire.Hex.encode (Crypto.Sha256.digest s)) 0 16

type error =
  | Io of string
  | Not_durable
  | Missing_footer of { actual_bytes : int }
  | Truncated of { expected_bytes : int; actual_bytes : int }
  | Corrupt of { offset : int }

let error_to_string ?(what = "file") = function
  | Io e -> Printf.sprintf "%s: %s" what e
  | Not_durable -> Printf.sprintf "%s: not a durable (checksummed) file" what
  | Missing_footer { actual_bytes } ->
      Printf.sprintf
        "%s: checksum footer missing — file truncated at or after byte %d" what actual_bytes
  | Truncated { expected_bytes; actual_bytes } ->
      Printf.sprintf "%s: truncated — footer declares %d content bytes, found %d" what
        expected_bytes actual_bytes
  | Corrupt { offset } ->
      Printf.sprintf "%s: corrupt — first damaged block starts at byte offset %d" what offset

(* --- Writing ----------------------------------------------------------------- *)

type writer = {
  oc : out_channel;
  pending : Buffer.t; (* bytes not yet closed into a block *)
  mutable tags : string list; (* completed block tags, reversed *)
  mutable bytes : int;
}

let add w s =
  output_string w.oc s;
  Buffer.add_string w.pending s;
  w.bytes <- w.bytes + String.length s;
  while Buffer.length w.pending >= block_size do
    let block = Buffer.sub w.pending 0 block_size in
    let rest = Buffer.sub w.pending block_size (Buffer.length w.pending - block_size) in
    Buffer.clear w.pending;
    Buffer.add_string w.pending rest;
    w.tags <- block_tag block :: w.tags
  done

let footer w =
  let tags =
    let last = if Buffer.length w.pending > 0 then [ block_tag (Buffer.contents w.pending) ] else [] in
    List.rev_append w.tags last
  in
  Printf.sprintf "%sbytes=%d block=%d crc=%s\n" footer_tag w.bytes block_size
    (String.concat "." tags)

let fsync_channel oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Directory fsync makes the rename itself durable; best-effort because
   some filesystems refuse O_RDONLY directory fds. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let with_writer path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  let committed = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !committed then begin
        close_out_noerr oc;
        try Sys.remove tmp with Sys_error _ -> ()
      end)
    (fun () ->
      let w = { oc; pending = Buffer.create block_size; tags = []; bytes = 0 } in
      output_string oc header;
      f w;
      (* A separator newline keeps the footer on its own line no matter
         what the content ends with (binary, JSON without a trailing
         newline). It belongs to the frame: [bytes=] does not count it
         and the reader strips it. *)
      output_string oc "\n";
      output_string oc (footer w);
      fsync_channel oc;
      close_out oc;
      committed := true;
      Sys.rename tmp path;
      fsync_dir (Filename.dirname path))

let write path content = with_writer path (fun w -> add w content)

(* --- Reading ----------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* Split a raw durable file into (content, footer-line) — or report why
   it cannot be. *)
let frame raw =
  if not (starts_with ~prefix:header raw) then Error Not_durable
  else begin
    let hlen = String.length header in
    let len = String.length raw in
    let body_len = len - hlen in
    let missing () = Error (Missing_footer { actual_bytes = max 0 body_len }) in
    if len = 0 || raw.[len - 1] <> '\n' then missing ()
    else
      let footer_start =
        match String.rindex_from_opt raw (len - 2) '\n' with Some i -> i + 1 | None -> hlen
      in
      let line = String.sub raw footer_start (len - footer_start) in
      if not (starts_with ~prefix:footer_tag line) then missing ()
      else
        (* Drop the frame's separator newline before the footer; content
           length is re-checked against [bytes=] in [verify] anyway. *)
        let content_end = max hlen (footer_start - 1) in
        Ok (String.sub raw hlen (content_end - hlen), line)
  end

let parse_footer line =
  let fields = String.split_on_char ' ' (String.trim line) in
  let assoc key =
    List.find_map
      (fun f ->
        match String.index_opt f '=' with
        | Some i when String.sub f 0 i = key ->
            Some (String.sub f (i + 1) (String.length f - i - 1))
        | _ -> None)
      fields
  in
  match (assoc "bytes", assoc "block", assoc "crc") with
  | Some b, Some bl, Some crc -> (
      match (int_of_string_opt b, int_of_string_opt bl) with
      | Some bytes, Some block when bytes >= 0 && block > 0 ->
          let tags = if crc = "" then [] else String.split_on_char '.' crc in
          Some (bytes, block, tags)
      | _ -> None)
  | _ -> None

let verify content (bytes, block, tags) =
  let actual = String.length content in
  if actual <> bytes then Error (Truncated { expected_bytes = bytes; actual_bytes = actual })
  else begin
    let n_blocks = (bytes + block - 1) / block in
    if List.length tags <> n_blocks then Error (Corrupt { offset = 0 })
    else begin
      let bad = ref None in
      List.iteri
        (fun i tag ->
          if !bad = None then begin
            let off = i * block in
            let len = min block (bytes - off) in
            if block_tag (String.sub content off len) <> tag then bad := Some off
          end)
        tags;
      match !bad with None -> Ok content | Some offset -> Error (Corrupt { offset })
    end
  end

let read path =
  match read_file path with
  | exception Sys_error e -> Error (Io e)
  | raw -> (
      match frame raw with
      | Error _ as e -> e
      | Ok (content, footer_line) -> (
          match parse_footer footer_line with
          | None -> Error (Missing_footer { actual_bytes = String.length content })
          | Some spec -> verify content spec))

let read_any path =
  match read_file path with
  | exception Sys_error e -> Error (Io e)
  | raw -> (
      match frame raw with
      | Error Not_durable -> Ok raw (* legacy, pre-durability file: no verification possible *)
      | Error _ as e -> e
      | Ok (content, footer_line) -> (
          match parse_footer footer_line with
          | None -> Error (Missing_footer { actual_bytes = String.length content })
          | Some spec -> verify content spec))
