(** Atomic, checksummed file persistence.

    Every artifact the project archives (campaign CSVs, checkpoint day
    files, bench JSON) is written through this module: content goes to a
    same-directory temp file, is fsynced, and is renamed over the
    destination, so readers only ever see a complete old file or a
    complete new file. The written file is framed by a header line
    ([#tlsharm-durable v1]) and a footer line carrying the content byte
    count plus a truncated SHA-256 tag per 64 KiB block, which lets
    {!read} detect truncation and name the byte offset of corruption. *)

type error =
  | Io of string  (** the underlying syscall failed (missing file, EACCES, …) *)
  | Not_durable  (** no durable header: a legacy/foreign file *)
  | Missing_footer of { actual_bytes : int }
      (** durable header present but no checksum footer — the file was
          truncated at or after [actual_bytes] content bytes *)
  | Truncated of { expected_bytes : int; actual_bytes : int }
      (** footer present but declares more content than the file holds *)
  | Corrupt of { offset : int }
      (** a checksum mismatch; [offset] is the content byte offset of the
          first damaged block *)

val error_to_string : ?what:string -> error -> string
(** One-line rendering suitable for CLI error messages; [what] names the
    file (defaults to ["file"]). *)

val write : string -> string -> unit
(** [write path content] atomically replaces [path] with a durable frame
    around [content]. On any failure the temp file is removed and the
    original [path] is untouched. *)

type writer
(** Incremental writer for large artifacts; obtained via {!with_writer}. *)

val add : writer -> string -> unit

val with_writer : string -> (writer -> unit) -> unit
(** [with_writer path f] streams the content produced by [f] through the
    same atomic + checksummed discipline as {!write} without holding the
    whole artifact in memory twice. *)

val read : string -> (string, error) result
(** Read and verify a durable file, returning its content with the frame
    stripped. Never raises on bad input; all failure modes are in
    {!type:error}. *)

val read_any : string -> (string, error) result
(** Like {!read}, but a file without the durable header is returned
    verbatim ([Ok raw]) instead of [Error Not_durable] — the
    compatibility path for archives written before this module existed.
    Files *with* the header are still fully verified. *)

val block_size : int
(** Content bytes covered by each checksum tag (64 KiB). *)
