(* Append-only block log for streaming archives.

   [Atomic_io] is the right tool for artifacts written once at the end of
   a run, but a streaming campaign sink appends one block per scan day
   for weeks — rewriting the whole file atomically per day would be
   quadratic in campaign length. A spool instead appends framed blocks
   to one open file and flushes after each, so a crash loses at most the
   block being written, and the reader can tell exactly how much of the
   stream is trustworthy:

     #tlsharm-spool v1
     #block 0 bytes=N
     <N bytes of payload>
     #block 1 bytes=M
     ...
     #spool-end blocks=K

   The framing makes three states distinguishable at read time: a
   *complete* spool (footer present, count matches), a *torn* spool (no
   footer; the valid block prefix is returned and the torn tail
   dropped — the crash-resume path re-emits it), and a *damaged* spool
   (malformed header or frame), which is an error rather than a silent
   truncation. *)

let header = "#tlsharm-spool v1"

type writer = {
  oc : out_channel;
  mutable blocks : int;
  mutable closed : bool;
}

let create path =
  let oc = open_out_bin path in
  output_string oc header;
  output_char oc '\n';
  flush oc;
  { oc; blocks = 0; closed = false }

let add_block w payload =
  if w.closed then invalid_arg "Durable.Spool.add_block: writer is closed";
  Printf.fprintf w.oc "#block %d bytes=%d\n" w.blocks (String.length payload);
  output_string w.oc payload;
  w.blocks <- w.blocks + 1;
  (* Flush per block: the crash window is one block, not the whole
     stream. fsync is deferred to [close] — a spool's durability story is
     "resume re-emits the tail", not "every block survives powercuts". *)
  flush w.oc

let close w =
  if not w.closed then begin
    Printf.fprintf w.oc "#spool-end blocks=%d\n" w.blocks;
    flush w.oc;
    (try Unix.fsync (Unix.descr_of_out_channel w.oc) with Unix.Unix_error _ -> ());
    close_out w.oc;
    w.closed <- true
  end

(* Frame parsing: blocks are consumed while their frames verify; the
   first torn or unrecognized frame (truncated marker, short payload,
   out-of-sequence index) ends the valid prefix and the tail is
   dropped — the crash-resume path re-emits it. Only a missing or
   malformed header is an error, because then nothing about the file can
   be trusted. *)
exception Torn

let read path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | content ->
      let len = String.length content in
      let line_end pos =
        match String.index_from_opt content pos '\n' with Some i -> i | None -> len
      in
      let hdr_end = line_end 0 in
      if hdr_end >= len || not (String.equal (String.sub content 0 hdr_end) header) then
        Error (path ^ ": not a spool file (bad header)")
      else begin
        let blocks = ref [] in
        let n = ref 0 in
        let complete = ref false in
        (try
           let pos = ref (hdr_end + 1) in
           while !pos < len do
             let e = line_end !pos in
             if e >= len then raise Torn;
             let marker = String.sub content !pos (e - !pos) in
             match Scanf.sscanf_opt marker "#block %d bytes=%d" (fun i b -> (i, b)) with
             | Some (i, bytes) when i = !n && bytes >= 0 ->
                 let start = e + 1 in
                 if start + bytes > len then raise Torn;
                 blocks := String.sub content start bytes :: !blocks;
                 incr n;
                 pos := start + bytes
             | Some _ -> raise Torn
             | None -> (
                 match Scanf.sscanf_opt marker "#spool-end blocks=%d" (fun k -> k) with
                 | Some k when k = !n ->
                     complete := true;
                     pos := len
                 | Some _ | None -> raise Torn)
           done
         with Torn -> ());
        Ok (List.rev !blocks, !complete)
      end
