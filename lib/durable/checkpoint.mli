(** Versioned checkpoint directories for resumable campaigns.

    A checkpoint directory holds a manifest (run parameters, format
    version) plus one subdirectory per {e stream} — an independent
    sequence of per-day snapshots. Serial campaigns use a single
    ["serial"] stream; parallel campaigns use one stream per shard. All
    files are written through {!Atomic_io}, so crashes leave either the
    previous complete snapshot set or nothing. *)

exception Mismatch of string
(** Replayed computation diverged from a recorded checkpoint (wrong
    seed/world, code drift). A determinism-contract violation: it aborts
    the run rather than being retried, and worker supervision re-raises
    it instead of absorbing it. *)

val mismatch : ('a, unit, string, 'b) format4 -> 'a
(** [mismatch fmt …] raises {!Mismatch} with a formatted message. *)

type t
(** A checkpoint store rooted at a directory. *)

val dir : t -> string
val version : int

val init : dir:string -> manifest:(string * string) list -> (t, string) result
(** Create (or re-attach to) a checkpoint directory. A [version] field
    is prepended to the manifest automatically. Re-attaching succeeds
    only if the existing manifest matches exactly; a directory holding a
    different campaign is refused. *)

val attach : dir:string -> (t, string) result
(** Open an existing checkpoint directory for resuming; validates that a
    readable, version-compatible manifest is present. *)

val manifest : t -> ((string * string) list, string) result
val find : t -> string -> string option
(** [find t key] looks up a manifest field; [None] if absent or the
    manifest is unreadable. *)

type stream
(** One per-day snapshot sequence within a store. *)

val stream : t -> string -> stream
(** [stream t name] opens (creating if needed) the stream subdirectory. *)

val write_day : stream -> day:int -> string -> unit
(** Atomically persist the payload for virtual day [day]. *)

val read_day : stream -> day:int -> (string, Atomic_io.error) result

val valid_prefix : ?decode:(day:int -> string -> bool) -> stream -> days:int -> int
(** The number of leading days ([0 .. n-1]) whose snapshots exist,
    verify their checksums, and satisfy [decode] (default: accept).
    Resume continues from this prefix: a corrupt or truncated day file
    ends the prefix there, which is exactly the fall-back-to-last-valid
    behaviour the CLI promises. *)
