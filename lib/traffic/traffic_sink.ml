(* Thin framing over Scanner.Stream_sink — see the interface. *)

type t = Scanner.Stream_sink.t
type stream = Scanner.Stream_sink.stream

let stream_name shard = Printf.sprintf "users-%04d" shard

let manifest_agrees existing proposed =
  (* Order-insensitive equality on the caller's keys; the sink adds its
     own [schema] entry, which [proposed] never carries. *)
  List.for_all
    (fun (k, v) -> match List.assoc_opt k existing with Some v' -> v = v' | None -> false)
    proposed
  && List.length existing = List.length proposed + 1

let create ~dir ~manifest =
  let check =
    if Sys.file_exists (Filename.concat dir "manifest") then
      match Scanner.Stream_sink.manifest ~dir with
      | Error e -> Error e
      | Ok existing when not (manifest_agrees existing manifest) ->
          Error
            (Printf.sprintf
               "%s already holds a different traffic run — pick a fresh --stream-out \
                directory or delete it"
               dir)
      | Ok _ -> Ok ()
    else Ok ()
  in
  match check with
  | Error e -> Error e
  | Ok () -> Scanner.Stream_sink.create ~dir ~manifest

let dir = Scanner.Stream_sink.dir
let stream t shard = Scanner.Stream_sink.stream t (stream_name shard)

let append_day s ~day rows =
  Scanner.Stream_sink.append_day s ~rows:(List.length rows) (Row.day_payload ~day rows)

let finish s ~users_lo ~users_hi ~hosts =
  Scanner.Stream_sink.finish s ~trailer:(Row.trailer ~users_lo ~users_hi hosts)

let rows_written = Scanner.Stream_sink.rows_written
let manifest ~dir = Scanner.Stream_sink.manifest ~dir

let ( let* ) = Result.bind

let decode_blocks blocks trailer =
  let* days =
    List.fold_left
      (fun acc b ->
        let* acc = acc in
        let* day, rows = Row.decode_day b in
        Ok ((day, rows) :: acc))
      (Ok []) blocks
  in
  let* t = Row.decode_trailer trailer in
  Ok (List.rev days, t)

let shard_ids ~dir =
  let* names = Scanner.Stream_sink.stream_names ~dir in
  Ok
    (List.filter_map
       (fun n ->
         if String.starts_with ~prefix:"users-" n then
           int_of_string_opt (String.sub n 6 (String.length n - 6))
         else None)
       names)

let read_shard ~dir ~shard =
  let* blocks, trailer = Scanner.Stream_sink.read_stream ~dir (stream_name shard) in
  let* days, t = decode_blocks blocks trailer in
  Ok (List.concat_map snd days, t)

let shard_complete ~dir ~shard ~days =
  match Scanner.Stream_sink.read_stream ~dir (stream_name shard) with
  | Error _ -> false
  | Ok (blocks, trailer) -> (
      List.length blocks = days
      && match Row.decode_trailer trailer with Ok _ -> true | Error _ -> false)

let fold_rows ~dir ~init ~f =
  let* names = Scanner.Stream_sink.stream_names ~dir in
  let* acc, hosts =
    List.fold_left
      (fun state name ->
        let* acc, hosts = state in
        let* blocks, trailer = Scanner.Stream_sink.read_stream ~dir name in
        let* days, (_, _, shard_hosts) = decode_blocks blocks trailer in
        let acc =
          List.fold_left
            (fun acc (_, rows) -> List.fold_left f acc rows)
            acc days
        in
        Ok (acc, (match hosts with [] -> shard_hosts | _ -> hosts)))
      (Ok (init, []))
      names
  in
  Ok (acc, hosts)
