(** One simulated client connection, as the traffic population streams
    it: who connected where, what resumption state was offered and
    accepted, and which linkability chain the connection extends. The
    row is the unit the {!Traffic_sink} spools and
    [Analysis.Tracking_report] folds. *)

type offered = O_fresh | O_session_id | O_ticket
type resumed = R_no | R_session_id | R_ticket

type t = {
  time : int;  (** epoch seconds on the simulated clock *)
  user : int;  (** global user id *)
  page : int;  (** page-load ordinal within the user's history *)
  hostname : string;  (** the domain connected to *)
  page_host : string;
      (** the page's first-party hostname — what a third-party observer
          learns about the visit (the Referer, in browser terms) *)
  primary : bool;  (** first-party connection of its page load *)
  ok : bool;
  offered : offered;
  resumed : resumed;
  new_ticket : bool;  (** the server issued a NewSessionTicket *)
  chain : int;
      (** linkability chain ordinal within (user, resumption scope): a
          [O_fresh] offer starts a new chain; any state offer — accepted
          or not, the bytes are on the wire either way — extends the
          current one *)
}

val to_line : t -> string
val of_line : string -> (t, string) result

(** {2 Streamed day blocks and trailer}

    Mirrors the {!Scanner.Daily_scan} stream codec: one spool block per
    simulated day holding that day's rows in event order, and a trailer
    naming every browsable domain with its rank, sampling weight and
    operator (the coordinates the tracking analysis joins rows
    against). *)

val day_payload : day:int -> t list -> string
val decode_day : string -> (int * t list, string) result

type host_info = { h_rank : int; h_weight : float; h_operator : string }

val trailer : users_lo:int -> users_hi:int -> (string * host_info) list -> string
(** [users_lo..users_hi] (inclusive-exclusive) is the shard's user-id
    range; the host table lists browsable domains in rank order. *)

val decode_trailer : string -> (int * int * (string * host_info) list, string) result
