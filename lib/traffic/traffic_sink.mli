(** Streaming archive for a traffic run: a {!Scanner.Stream_sink}
    directory (mode [traffic]) holding one spool per user shard, each a
    sequence of {!Row} day blocks plus a trailer. The payload codec
    lives in {!Row}; this module frames it, guards the manifest, and
    gives the runner its resume primitive: a shard whose spool is
    already complete for the whole run is skipped and its bytes left
    untouched, which is what makes a crashed-and-rerun traffic run
    byte-identical to an uninterrupted one. *)

type t

val create : dir:string -> manifest:(string * string) list -> (t, string) result
(** Create or re-attach. Re-attaching to a directory whose manifest
    disagrees with [manifest] (a different population, policy or world)
    is refused: silently mixing two runs' spools would corrupt the
    resume-skip logic. *)

val dir : t -> string
val stream_name : int -> string

type stream

val stream : t -> int -> stream
(** Open (truncating) shard [i]'s spool. *)

val append_day : stream -> day:int -> Row.t list -> unit

val finish :
  stream -> users_lo:int -> users_hi:int -> hosts:(string * Row.host_info) list -> unit

val rows_written : t -> int
val manifest : dir:string -> ((string * string) list, string) result

val shard_ids : dir:string -> (int list, string) result
(** Shard ids present in an archive, ascending. *)

val shard_complete : dir:string -> shard:int -> days:int -> bool
(** The shard's spool is sealed and holds exactly [days] day blocks and
    a decodable trailer — safe to skip on resume. *)

val read_shard :
  dir:string ->
  shard:int ->
  (Row.t list * (int * int * (string * Row.host_info) list), string) result
(** All rows of one complete shard in stream order, with its decoded
    trailer [(users_lo, users_hi, hosts)]. *)

val fold_rows :
  dir:string ->
  init:'a ->
  f:('a -> Row.t -> 'a) ->
  ('a * (string * Row.host_info) list, string) result
(** Fold every row of a complete archive in shard/day/event order,
    loading one shard at a time — the memory-flat path the tracking
    analysis uses. Returns the host table from the first trailer. *)
