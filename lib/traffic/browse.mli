(** The browsing model: which pages a user loads and which hostnames one
    page load touches. Page popularity is zipf-ish over the world's
    rank-ordered HTTPS domains (the sampling weight folds in how many
    real Top-Million sites a sampled domain stands for); every page
    additionally pulls 0–4 subresource hosts from the head of the
    population — the shared CDN/analytics operators whose recurrence
    across unrelated pages is exactly what makes third-party resumption
    state a tracking vector. All draws come from the DRBG the caller
    passes (the per-user generator), so a user's browsing history
    depends only on their own seed. *)

type t

val create : Simnet.World.t -> t
(** Precomputes the popularity tables for one world; raises
    [Invalid_argument] if the world has no HTTPS domains. *)

val hosts : t -> (string * Row.host_info) list
(** The browsable (HTTPS) domains in rank order, with the coordinates
    the streamed trailer archives. *)

type page = {
  p_primary : string;
  p_subresources : string list;  (** deduplicated, never the primary *)
}

val page : t -> Crypto.Drbg.t -> page

val pages_today : t -> Crypto.Drbg.t -> mean:float -> max_pages:int -> int
(** How many pages a user loads on one day: a truncated exponential
    draw — most days are light, a long tail of heavy browsing days. *)
