(* Popularity tables for the browsing model.

   Primary pages: P(domain at position i) ∝ weight_i / (i+1) over the
   rank-sorted HTTPS domains — a zipf law over the *represented* Top
   Million (the sampling weight expands each sampled domain to the real
   sites it stands for), evaluated on the sampled array positions.

   Subresources: a second, much steeper zipf over the head of the same
   array. The head is where the shared operators live (flagships and
   CDN-fronted customers), so independent users keep meeting the same
   few third parties — the recurrence the tracking analysis measures. *)

type t = {
  names : string array;  (* rank order *)
  cum : float array;  (* cumulative popularity, same indexing *)
  total : float;
  tp_cum : float array;  (* cumulative popularity over the head pool *)
  tp_total : float;
  host_table : (string * Row.host_info) list;
}

let tp_pool_size = 96

let create world =
  let all = Simnet.World.domains world in
  let https =
    Array.of_list
      (List.filter Simnet.World.domain_has_https (Array.to_list all))
  in
  let n = Array.length https in
  if n = 0 then invalid_arg "Browse.create: world has no HTTPS domains";
  let names = Array.map Simnet.World.domain_name https in
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i d ->
      acc := !acc +. (Simnet.World.domain_weight d /. float_of_int (i + 1));
      cum.(i) <- !acc)
    https;
  let total = !acc in
  let tp_n = min tp_pool_size n in
  let tp_cum = Array.make tp_n 0.0 in
  let tp_acc = ref 0.0 in
  for i = 0 to tp_n - 1 do
    (* steeper head law: s = 1 over the pool positions, no weight
       expansion — third-party share concentrates on the top operators *)
    tp_acc := !tp_acc +. (1.0 /. float_of_int (i + 1));
    tp_cum.(i) <- !tp_acc
  done;
  let host_table =
    Array.to_list
      (Array.map
         (fun d ->
           ( Simnet.World.domain_name d,
             {
               Row.h_rank = Simnet.World.domain_rank d;
               h_weight = Simnet.World.domain_weight d;
               h_operator = Simnet.World.domain_operator d;
             } ))
         https)
  in
  { names; cum; total; tp_cum; tp_total = !tp_acc; host_table }

let hosts t = t.host_table

(* First index whose cumulative weight reaches [target]. *)
let search cum target =
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) < target then lo := mid + 1 else hi := mid
  done;
  !lo

let draw t rng ~cum ~total =
  let u = Crypto.Drbg.float01 rng *. total in
  t.names.(search cum u)

type page = { p_primary : string; p_subresources : string list }

(* 0–4 third-party hosts per page, mean ~1.5 — a stylized page-weight
   distribution; the exact shape only needs a realistic mix of
   no-third-party and heavy pages. *)
let sub_count rng =
  Crypto.Drbg.weighted rng [ (0.25, 0); (0.30, 1); (0.25, 2); (0.12, 3); (0.08, 4) ]

let page t rng =
  let p_primary = draw t rng ~cum:t.cum ~total:t.total in
  let k = sub_count rng in
  let subs = ref [] in
  for _ = 1 to k do
    let h = draw t rng ~cum:t.tp_cum ~total:t.tp_total in
    if h <> p_primary && not (List.mem h !subs) then subs := h :: !subs
  done;
  { p_primary; p_subresources = List.rev !subs }

let pages_today _t rng ~mean ~max_pages =
  if mean <= 0.0 then 0
  else min max_pages (int_of_float (Crypto.Drbg.exponential rng ~mean))
