(* The client population runner — see the interface for the sharding
   and determinism story. *)

type policy = Strict | Cross_operator

let policy_to_string = function Strict -> "strict" | Cross_operator -> "cross"

let policy_of_string = function
  | "strict" -> Ok Strict
  | "cross" -> Ok Cross_operator
  | s -> Error (Printf.sprintf "unknown resumption policy %S (strict|cross)" s)

type config = {
  users : int;
  days : int;
  shard_users : int;
  policy : policy;
  ticket_lifetime_cap : int;
  session_lifetime : int;
  store_capacity : int;
  pages_per_day : float;
  max_pages_per_day : int;
  world : Simnet.World.config;
}

let default_config =
  {
    users = 10_000;
    days = 63;
    shard_users = 16_384;
    policy = Strict;
    ticket_lifetime_cap = 0;
    session_lifetime = Simnet.Clock.day;
    store_capacity = 32;
    pages_per_day = 2.0;
    max_pages_per_day = 12;
    world = Simnet.World.default_config;
  }

type shard = { shard_id : int; users_lo : int; users_hi : int }

let validate cfg =
  if cfg.users < 0 then invalid_arg "Population: negative users";
  if cfg.days <= 0 then invalid_arg "Population: days must be positive";
  if cfg.shard_users <= 0 then invalid_arg "Population: shard_users must be positive";
  if cfg.store_capacity <= 0 then invalid_arg "Population: store_capacity must be positive";
  if cfg.ticket_lifetime_cap < 0 || cfg.session_lifetime < 0 then
    invalid_arg "Population: negative lifetime";
  if cfg.max_pages_per_day < 0 then invalid_arg "Population: negative max_pages_per_day"

let shards cfg =
  validate cfg;
  let n = (cfg.users + cfg.shard_users - 1) / cfg.shard_users in
  Array.init n (fun i ->
      {
        shard_id = i;
        users_lo = i * cfg.shard_users;
        users_hi = min cfg.users ((i + 1) * cfg.shard_users);
      })

(* --- Per-user state ----------------------------------------------------------- *)

type user = {
  uid : int;
  drbg : Crypto.Drbg.t;
  client : Tls.Client.t;
  store : Tls.Client_store.t;
  chains : (string, int) Hashtbl.t; (* scope -> current chain ordinal *)
  mutable next_chain : int;
  mutable pages : int; (* lifetime page-load counter *)
}

(* Everything a user ever does derives from this one seed, so a user's
   browsing history and key shares are independent of sharding, worker
   count and every other user. *)
let make_user ~world_seed ~client_config cfg uid =
  let drbg = Crypto.Drbg.create ~seed:(Printf.sprintf "traffic:%s:user:%d" world_seed uid) in
  let client = Tls.Client.create ~config:client_config ~rng:(Crypto.Drbg.fork drbg ~label:"tls") () in
  let store =
    Tls.Client_store.create ~session_lifetime:cfg.session_lifetime
      ~ticket_lifetime_cap:cfg.ticket_lifetime_cap ~capacity:cfg.store_capacity ()
  in
  { uid; drbg; client; store; chains = Hashtbl.create 8; next_chain = 0; pages = 0 }

(* The chains table tracks the current linkability chain per scope; it
   only matters for scopes the store still holds (a dropped scope's next
   offer is Fresh and starts a new chain), so prune it against the store
   when it outgrows the store's own bound — keeping per-user memory
   O(store capacity) over arbitrarily long campaigns. *)
let prune_chains ~now u =
  if Hashtbl.length u.chains > 8 * Tls.Client_store.capacity u.store then
    Hashtbl.filter_map_inplace
      (fun scope chain ->
        if Tls.Client_store.holds u.store ~now ~scope then Some chain else None)
      u.chains

(* --- One shard ---------------------------------------------------------------- *)

type shard_outcome = {
  so_rows : Row.t list; (* event order; [] unless retained *)
  so_hosts : (string * Row.host_info) list;
  so_count : int;
}

let scope_of world policy hostname =
  match policy with
  | Strict -> hostname
  | Cross_operator -> (
      match Simnet.World.endpoint_info world hostname with
      | Some (_, op) -> "op:" ^ op
      | None -> hostname)

let connect_host ~world ~cfg ~obs ~time u ~page_host ~primary hostname =
  let scope = scope_of world cfg.policy hostname in
  let offer = Tls.Client_store.offer u.store ~now:time ~scope in
  let offered =
    match offer with
    | Tls.Client.Fresh -> Row.O_fresh
    | Tls.Client.Offer_session_id _ -> Row.O_session_id
    | Tls.Client.Offer_ticket _ -> Row.O_ticket
  in
  let chain =
    match offered with
    | Row.O_fresh ->
        u.next_chain <- u.next_chain + 1;
        Hashtbl.replace u.chains scope u.next_chain;
        u.next_chain
    | _ -> ( match Hashtbl.find_opt u.chains scope with Some c -> c | None -> 0)
  in
  Obs.Recorder.incr_opt obs "traffic.connects";
  (Obs.Recorder.incr_opt obs
     (match offered with
     | Row.O_fresh -> "traffic.offer.fresh"
     | Row.O_session_id -> "traffic.offer.session_id"
     | Row.O_ticket -> "traffic.offer.ticket"));
  let ok, resumed, new_ticket =
    match Simnet.World.connect world ~client:u.client ~hostname ~offer with
    | Error _ -> (false, Row.R_no, false)
    | Ok o ->
        if o.Tls.Engine.ok then
          Tls.Client_store.note u.store ~now:time ~scope ~session:o.Tls.Engine.session
            ~ticket:o.Tls.Engine.new_ticket;
        ( o.Tls.Engine.ok,
          (match o.Tls.Engine.resumed with
          | `No -> Row.R_no
          | `Via_session_id -> Row.R_session_id
          | `Via_ticket -> Row.R_ticket),
          o.Tls.Engine.new_ticket <> None )
  in
  (Obs.Recorder.incr_opt obs
     (if not ok then "traffic.failed"
      else
        match resumed with
        | Row.R_no -> "traffic.resumed.none"
        | Row.R_session_id -> "traffic.resumed.session_id"
        | Row.R_ticket -> "traffic.resumed.ticket"));
  Obs.Recorder.gauge_max_opt obs "traffic.store.size" (Tls.Client_store.size u.store);
  prune_chains ~now:time u;
  {
    Row.time;
    user = u.uid;
    page = u.pages;
    hostname;
    page_host;
    primary;
    ok;
    offered;
    resumed;
    new_ticket;
    chain;
  }

let simulate_shard cfg ?sink ?chaos ~shard_obs (s : shard) ~retain =
  let world = Simnet.World.create ~config:cfg.world () in
  let clock = Simnet.World.clock world in
  let start = Simnet.Clock.now clock in
  let browse = Browse.create world in
  let client_config =
    let base =
      Tls.Config.default_client ~env:(Simnet.World.env world)
        ~root_store:(Simnet.World.root_store world)
    in
    (* Like the scanner's probes: bulk simulation skips per-connection
       chain validation and SKE verification — the traffic measurements
       never read trust verdicts. *)
    { base with Tls.Config.check_certs = false; evaluate_trust = false; verify_ske = false }
  in
  let n_users = s.users_hi - s.users_lo in
  let users =
    Array.init n_users (fun i ->
        make_user ~world_seed:cfg.world.Simnet.World.seed ~client_config cfg (s.users_lo + i))
  in
  let sink_stream = Option.map (fun sk -> Traffic_sink.stream sk s.shard_id) sink in
  let retained = ref [] in
  let total = ref 0 in
  (* Scratch: first/last event time per user within the current day, for
     the traffic.user_day spans. *)
  let first_seen = Array.make (max n_users 1) (-1) in
  let last_seen = Array.make (max n_users 1) (-1) in
  for day = 0 to cfg.days - 1 do
    (match chaos with Some c -> c ~shard:s.shard_id ~day | None -> ());
    let day_start = start + (day * Simnet.Clock.day) in
    (* Plan the day in uid order: each user draws page count, times and
       compositions from their own DRBG, so plans are user-local... *)
    let events = ref [] in
    Array.iteri
      (fun i u ->
        let n =
          Browse.pages_today browse u.drbg ~mean:cfg.pages_per_day
            ~max_pages:cfg.max_pages_per_day
        in
        for k = 0 to n - 1 do
          let time = day_start + Crypto.Drbg.int_below u.drbg Simnet.Clock.day in
          let page = Browse.page browse u.drbg in
          events := (time, i, k, page) :: !events
        done)
      users;
    (* ...then the shard executes them in global time order — the shared
       server state (session caches, STEK rotations) sees one
       deterministic interleaving. *)
    let events =
      List.sort
        (fun (t1, i1, k1, _) (t2, i2, k2, _) ->
          compare (t1, i1, k1) (t2, i2, k2))
        !events
    in
    Array.fill first_seen 0 (Array.length first_seen) (-1);
    Array.fill last_seen 0 (Array.length last_seen) (-1);
    let day_rows = ref [] in
    List.iter
      (fun (time, i, _k, page) ->
        let u = users.(i) in
        Simnet.Clock.set clock time;
        if first_seen.(i) < 0 then first_seen.(i) <- time;
        last_seen.(i) <- time;
        u.pages <- u.pages + 1;
        Obs.Recorder.incr_opt shard_obs "traffic.pages";
        let primary_host = page.Browse.p_primary in
        let emit row = day_rows := row :: !day_rows in
        emit
          (connect_host ~world ~cfg ~obs:shard_obs ~time u ~page_host:primary_host
             ~primary:true primary_host);
        List.iter
          (fun sub ->
            emit
              (connect_host ~world ~cfg ~obs:shard_obs ~time u ~page_host:primary_host
                 ~primary:false sub))
          page.Browse.p_subresources)
      events;
    (* One aggregated span per active user-day: browsing window on the
       simulated clock. Recorded directly (the spans of one user's day
       interleave with other users', so no closure wraps them). *)
    (match shard_obs with
    | Some o ->
        let tr = Obs.Recorder.trace o in
        Array.iteri
          (fun i first ->
            if first >= 0 then begin
              Obs.Trace.record tr ~name:"traffic.user_day" ~sim_start:first
                ~sim_end:last_seen.(i) ();
              Obs.Recorder.incr o "traffic.user_days"
            end)
          first_seen
    | None -> ());
    let rows = List.rev !day_rows in
    total := !total + List.length rows;
    Option.iter (fun st -> Traffic_sink.append_day st ~day rows) sink_stream;
    if retain then retained := rows :: !retained
  done;
  Simnet.Clock.set clock (start + (cfg.days * Simnet.Clock.day));
  let hosts = Browse.hosts browse in
  Option.iter
    (fun st -> Traffic_sink.finish st ~users_lo:s.users_lo ~users_hi:s.users_hi ~hosts)
    sink_stream;
  {
    so_rows = (if retain then List.concat (List.rev !retained) else []);
    so_hosts = hosts;
    so_count = !total;
  }

(* --- The parallel runner ------------------------------------------------------ *)

type result = {
  n_shards : int;
  rows : Row.t list array;
  hosts : (string * Row.host_info) list;
  total_rows : int;
}

let run ?jobs ?sink ?(retain_rows = true) ?chaos ?obs cfg =
  validate cfg;
  let shard_arr = shards cfg in
  let n_shards = Array.length shard_arr in
  let jobs =
    let requested =
      match jobs with Some j -> max 1 j | None -> Domain.recommended_domain_count ()
    in
    max 1 (min requested (max 1 n_shards))
  in
  let outcomes =
    Array.make n_shards { so_rows = []; so_hosts = []; so_count = 0 }
  in
  let recorders : Obs.Recorder.t option array = Array.make n_shards None in
  let run_shard (s : shard) =
    let skip =
      match sink with
      | Some sk ->
          Traffic_sink.shard_complete ~dir:(Traffic_sink.dir sk) ~shard:s.shard_id
            ~days:cfg.days
      | None -> false
    in
    if skip then
      (* Already spooled by a previous (interrupted) run: leave the bytes
         untouched. Rows are decoded back only if the caller retains. *)
      outcomes.(s.shard_id) <-
        (if retain_rows then
           match
             Traffic_sink.read_shard ~dir:(Traffic_sink.dir (Option.get sink))
               ~shard:s.shard_id
           with
           | Ok (rows, (_, _, hosts)) ->
               { so_rows = rows; so_hosts = hosts; so_count = List.length rows }
           | Error e -> failwith e
         else { so_rows = []; so_hosts = []; so_count = 0 })
    else begin
      let shard_obs =
        Option.map (fun o -> Obs.Recorder.create ~wall:(Obs.Recorder.wall_enabled o) ()) obs
      in
      (* The shard span covers the whole shard — world construction
         included, since the scheduler pays for it too. Simulated time is
         read off a clock that exists only once the world does. *)
      let sim_now = ref cfg.world.Simnet.World.start_time in
      let outcome =
        Obs.Recorder.span_opt shard_obs ~name:"traffic.shard"
          ~attrs:[ ("shard", string_of_int s.shard_id) ]
          ~now:(fun () -> !sim_now)
          (fun () ->
            let o = simulate_shard cfg ?sink ?chaos ~shard_obs s ~retain:retain_rows in
            sim_now := cfg.world.Simnet.World.start_time + (cfg.days * Simnet.Clock.day);
            o)
      in
      outcomes.(s.shard_id) <- outcome;
      recorders.(s.shard_id) <- shard_obs
    end
  in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n_shards then begin
        run_shard shard_arr.(i);
        loop ()
      end
    in
    loop ()
  in
  let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join helpers;
  (* Merge in shard order: counters sum and gauges max commutatively, but
     a fixed order keeps intermediate states reproducible too. *)
  Option.iter
    (fun o ->
      Obs.Recorder.gauge_max o "traffic.days" cfg.days;
      Obs.Recorder.gauge_max o "traffic.users" cfg.users;
      Array.iter (function Some r -> Obs.Recorder.merge o r | None -> ()) recorders)
    obs;
  let hosts =
    Array.fold_left
      (fun acc o -> match acc with [] -> o.so_hosts | _ -> acc)
      [] outcomes
  in
  {
    n_shards;
    rows = Array.map (fun o -> o.so_rows) outcomes;
    hosts;
    total_rows = Array.fold_left (fun a o -> a + o.so_count) 0 outcomes;
  }
