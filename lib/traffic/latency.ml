(* Per-hostname RTT from a keyed hash of the name: stable across runs,
   uncorrelated with rank or operator, and recomputable row-side without
   the world. The [16, 240] ms range spans same-continent to
   intercontinental paths. *)

let rtt_ms hostname =
  let h = Crypto.Hmac.sha256 ~key:"traffic:rtt" hostname in
  let v =
    (Char.code h.[0] lsl 16) lor (Char.code h.[1] lsl 8) lor Char.code h.[2]
  in
  16 + (v mod 225)

let full_ms hostname = 2 * rtt_ms hostname
let abbreviated_ms hostname = rtt_ms hostname
let saved_ms hostname = full_ms hostname - abbreviated_ms hostname
