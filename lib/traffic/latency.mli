(** The handshake latency model behind the "latency saved by resumption"
    numbers: a deterministic per-hostname RTT (a pure hash — no world or
    clock access, so the analysis can recompute it from archived rows
    alone). A full TLS 1.2 handshake costs two round trips before
    application data, an abbreviated one costs one; resumption therefore
    saves exactly one RTT per connection. *)

val rtt_ms : string -> int
(** Deterministic round-trip time for a hostname, in [16, 240] ms. *)

val full_ms : string -> int
val abbreviated_ms : string -> int

val saved_ms : string -> int
(** [full_ms - abbreviated_ms]: one RTT. *)
