(* Row codec for the streamed traffic archive. Plain comma-separated
   lines: hostnames in this world contain no commas (see Namegen), and
   keeping the grammar trivial keeps the jobs-invariance argument about
   byte-identical spools easy to audit. *)

type offered = O_fresh | O_session_id | O_ticket
type resumed = R_no | R_session_id | R_ticket

type t = {
  time : int;
  user : int;
  page : int;
  hostname : string;
  page_host : string;
  primary : bool;
  ok : bool;
  offered : offered;
  resumed : resumed;
  new_ticket : bool;
  chain : int;
}

let offered_char = function O_fresh -> 'f' | O_session_id -> 's' | O_ticket -> 't'

let offered_of_char = function
  | 'f' -> Ok O_fresh
  | 's' -> Ok O_session_id
  | 't' -> Ok O_ticket
  | c -> Error (Printf.sprintf "bad offered %c" c)

let resumed_char = function R_no -> 'n' | R_session_id -> 's' | R_ticket -> 't'

let resumed_of_char = function
  | 'n' -> Ok R_no
  | 's' -> Ok R_session_id
  | 't' -> Ok R_ticket
  | c -> Error (Printf.sprintf "bad resumed %c" c)

let to_line r =
  Printf.sprintf "%d,%d,%d,%s,%s,%b,%b,%c,%c,%b,%d" r.time r.user r.page r.hostname
    r.page_host r.primary r.ok (offered_char r.offered) (resumed_char r.resumed)
    r.new_ticket r.chain

let ( let* ) = Result.bind

let bool_of_string_res s =
  match bool_of_string_opt s with Some b -> Ok b | None -> Error ("bad bool " ^ s)

let int_of_string_res s =
  match int_of_string_opt s with Some i -> Ok i | None -> Error ("bad int " ^ s)

let char_of_string_res s =
  if String.length s = 1 then Ok s.[0] else Error ("bad flag " ^ s)

let of_line line =
  match String.split_on_char ',' line with
  | [ time; user; page; hostname; page_host; primary; ok; offered; resumed; newt; chain ]
    ->
      let* time = int_of_string_res time in
      let* user = int_of_string_res user in
      let* page = int_of_string_res page in
      let* primary = bool_of_string_res primary in
      let* ok = bool_of_string_res ok in
      let* offered = Result.bind (char_of_string_res offered) offered_of_char in
      let* resumed = Result.bind (char_of_string_res resumed) resumed_of_char in
      let* new_ticket = bool_of_string_res newt in
      let* chain = int_of_string_res chain in
      Ok { time; user; page; hostname; page_host; primary; ok; offered; resumed; new_ticket; chain }
  | _ -> Error ("row: bad field count: " ^ line)

(* --- Day blocks --------------------------------------------------------------- *)

let day_payload ~day rows =
  let b = Buffer.create (64 * (1 + List.length rows)) in
  Printf.bprintf b "day=%d\nrows=%d\n" day (List.length rows);
  List.iter
    (fun r ->
      Buffer.add_string b (to_line r);
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let lines_of payload = String.split_on_char '\n' (String.trim payload)

let header_int ~key s =
  let prefix = key ^ "=" in
  if String.starts_with ~prefix s then
    int_of_string_res (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else Error (Printf.sprintf "expected %s=, got %s" key s)

let decode_day payload =
  match lines_of payload with
  | day_line :: rows_line :: rest ->
      let* day = header_int ~key:"day" day_line in
      let* n = header_int ~key:"rows" rows_line in
      if List.length rest <> n then Error "day block: row count mismatch"
      else
        let* rows =
          List.fold_left
            (fun acc line ->
              let* acc = acc in
              let* r = of_line line in
              Ok (r :: acc))
            (Ok []) rest
        in
        Ok (day, List.rev rows)
  | _ -> Error "day block: truncated header"

(* --- Trailer ------------------------------------------------------------------ *)

type host_info = { h_rank : int; h_weight : float; h_operator : string }

let trailer ~users_lo ~users_hi hosts =
  let b = Buffer.create (48 * (1 + List.length hosts)) in
  Printf.bprintf b "trailer\nusers=%d..%d\ndomains=%d\n" users_lo users_hi
    (List.length hosts);
  List.iter
    (fun (name, h) ->
      (* %.17g: float weights must survive the round-trip exactly, as in
         the scan-archive codec. *)
      Printf.bprintf b "%s,%d,%.17g,%s\n" name h.h_rank h.h_weight h.h_operator)
    hosts;
  Buffer.contents b

let decode_trailer payload =
  match lines_of payload with
  | "trailer" :: users_line :: domains_line :: rest ->
      let* lo, hi =
        match String.split_on_char '=' users_line with
        | [ "users"; range ] -> (
            match String.split_on_char '.' range with
            | [ lo; ""; hi ] ->
                let* lo = int_of_string_res lo in
                let* hi = int_of_string_res hi in
                Ok (lo, hi)
            | _ -> Error ("trailer: bad user range " ^ range))
        | _ -> Error ("trailer: bad users line " ^ users_line)
      in
      let* n = header_int ~key:"domains" domains_line in
      if List.length rest <> n then Error "trailer: domain count mismatch"
      else
        let* hosts =
          List.fold_left
            (fun acc line ->
              let* acc = acc in
              match String.split_on_char ',' line with
              | [ name; rank; weight; operator ] ->
                  let* h_rank = int_of_string_res rank in
                  let* h_weight =
                    match float_of_string_opt weight with
                    | Some f -> Ok f
                    | None -> Error ("trailer: bad weight " ^ weight)
                  in
                  Ok ((name, { h_rank; h_weight; h_operator = operator }) :: acc)
              | _ -> Error ("trailer: bad host line " ^ line))
            (Ok []) rest
        in
        Ok (lo, hi, List.rev hosts)
  | _ -> Error "trailer: truncated header"
