(** The client population runner: millions of simulated browser-like
    users driven over the virtual campaign window on OCaml 5 domains.

    {2 Sharding and determinism}

    Users are partitioned into fixed-size shards by user id — a function
    of the config alone, never of the worker count. Each shard
    instantiates its {e own} deterministic replica of the world from the
    shared config (worlds are pure functions of their config, so every
    replica is identical at creation) and simulates its users day by day
    on the replica's private clock: users within a shard interact
    through shared server state (session caches, STEK rotations) exactly
    as the population model intends, while users in different shards
    live in parallel replicas. Shards are drained from an atomic queue
    by a fixed worker pool, and every result lands in a slot owned by
    one worker — so archives and merged telemetry are byte-identical at
    any [jobs], the same contract {!Scanner.Parallel_campaign} makes.

    {2 Streaming and resume}

    With a {!Traffic_sink}, each simulated day's rows are spooled as the
    day completes and (with [retain_rows:false]) nothing row-shaped is
    kept in memory: RSS is bounded by [jobs] × (one world replica + one
    shard's user state), independent of the total user count. A shard
    whose spool is already complete for the whole run is skipped with
    its bytes untouched, so re-running after a crash yields an archive
    byte-identical to an uninterrupted run. *)

(** How a user scopes resumption state (the Sy et al. axis): [Strict]
    keys the client store by exact hostname; [Cross_operator] shares
    tickets and sessions across all hostnames of one operator — faster
    (more abbreviated handshakes), but welding every property of the
    operator into one linkable identity. *)
type policy = Strict | Cross_operator

val policy_to_string : policy -> string
val policy_of_string : string -> (policy, string) result

type config = {
  users : int;
  days : int;
  shard_users : int;  (** users per shard; sharding depends only on this *)
  policy : policy;
  ticket_lifetime_cap : int;
      (** client-side cap on ticket reuse, seconds; 0 = honor the
          server's advertised hint alone *)
  session_lifetime : int;  (** client-side session-ID reuse bound, seconds *)
  store_capacity : int;  (** scopes per user's {!Tls.Client_store} *)
  pages_per_day : float;  (** mean page loads per user-day *)
  max_pages_per_day : int;
  world : Simnet.World.config;
}

val default_config : config
(** 10k users, 63 days (the paper's nine weeks), 16384-user shards,
    strict policy, advertised lifetimes, 32-scope stores, 2 pages/day
    over the default world. *)

type shard = { shard_id : int; users_lo : int; users_hi : int }

val shards : config -> shard array

type result = {
  n_shards : int;
  rows : Row.t list array;
      (** per shard, in event order; empty when not retained *)
  hosts : (string * Row.host_info) list;
      (** browsable domains with rank/weight/operator *)
  total_rows : int;
}

val run :
  ?jobs:int ->
  ?sink:Traffic_sink.t ->
  ?retain_rows:bool ->
  ?chaos:(shard:int -> day:int -> unit) ->
  ?obs:Obs.Recorder.t ->
  config ->
  result
(** Raises on invalid configs; propagates shard exceptions (a crashed
    run with a sink can simply be re-run — see resume above). *)
