(** The latency-vs-tracking tradeoff table: what resumption buys each
    operator's visitors in handshake latency against the linkability
    window it hands that operator (and, via subresources, third-party
    observers) — the Sy et al. axis the traffic subsystem simulates.

    Definitions, per traffic {!Traffic.Row}s:

    - {b latency saved}: one RTT ({!Traffic.Latency.saved_ms}) for every
      abbreviated handshake, 0 for full ones; Horvitz-Thompson weighted
      by the connected domain's sampling weight, so means estimate the
      real Top-Million population.
    - {b linkability chain}: the maximal run of a user's connections
      tied together by resumption state — every connection that offers a
      ticket or session ID (accepted or not: the bytes identify the
      client on the wire either way) extends the chain its state came
      from; a fresh offer starts a new one. Chains are delimited by the
      row's [chain] ordinal, assigned at simulation time.
    - {b tracking window}: last minus first connection time of a chain
      with at least two connections — how long the observer can follow
      one client identity.
    - {b third-party exposure}: for chains seen by a subresource host,
      the number of distinct first-party pages ([page_host]) linked
      within one chain — cross-site browsing history leaked to that
      third party. *)

type meta = {
  policy : string;
  ticket_lifetime : int;  (** client-side cap, seconds; 0 = advertised *)
  users : int;
  days : int;
}

type class_row = {
  cls : string;  (** operator, or the aggregate rows ["(other)"]/["(all)"] *)
  conns : int;
  weight : float;  (** summed HT weight over connections *)
  ok_rate : float;
  resume_rate : float;  (** weighted share of abbreviated handshakes *)
  saved_mean_ms : float;  (** weighted mean saved per connection *)
  saved_total_ws : float;  (** total weighted saved, in weighted seconds *)
  saved_p50_ms : float;  (** over resumed connections *)
  saved_p90_ms : float;
  chains : int;
  linkable : int;  (** chains of >= 2 connections *)
  window_p50_s : float;  (** over linkable chains, weighted *)
  window_p90_s : float;
  window_max_s : float;
  hops_mean : float;  (** connections per linkable chain *)
  tp_chains : int;  (** linkable chains observed by a third party *)
  tp_primaries_mean : float;  (** distinct first-party pages per such chain *)
  tp_primaries_max : int;
}

type t = { meta : meta; rows : class_row list }
(** [rows]: operators above 1% of weighted connections, descending, then
    ["(other)"], then ["(all)"]. *)

(** {2 Folding}

    The accumulator streams: rows arrive shard by shard (any order
    within a user is fine — chains are keyed, not positional), and only
    per-chain and per-class aggregates are held. *)

type acc

val create : meta:meta -> hosts:(string * Traffic.Row.host_info) list -> acc
val add : acc -> Traffic.Row.t -> unit
val finalize : acc -> t

val of_rows :
  meta:meta -> hosts:(string * Traffic.Row.host_info) list -> Traffic.Row.t list -> t

val of_sink : dir:string -> (t, string) result
(** Load a streamed traffic archive one shard at a time; run metadata
    comes from the sink manifest. *)

val render : t -> string
(** The human-readable table the [traffic] CLI prints. *)
