(** Union-find over string keys (path compression, union by size), used
    to grow service groups transitively: if a's session resumes on b and
    b's on c, then a, b and c share state (Section 5.1). This is a
    re-export of {!Scanner.Union_find}, where the implementation lives so
    the campaign sharder can use it too. *)

include module type of struct
  include Scanner.Union_find
end
