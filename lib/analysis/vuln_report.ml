(* Operator-level harm ranking and cross-regional inconsistency.

   The paper quantifies per-domain vulnerability windows; this report
   rolls them up to the operators who actually hold the reused secrets.
   An operator's harm score combines how long its customers' recorded
   traffic stays decryptable (the Section 6 window, in days, HT-weighted
   across its domains) with how badly the operator is misconfigured
   (the {!Simnet.Profile.misconfig} severity scale): a shared-hosting
   provider with long STEK lifetimes *and* export-grade DH concentrates
   far more risk than either signal alone suggests.

   The inconsistency table mirrors Alashwali et al.: probing the same
   domains from several vantage points and comparing handshake
   fingerprints (negotiated suite + key-exchange value sizes) reveals
   operators whose regional deployments disagree about security
   configuration. *)

(* --- Operator harm ranking ------------------------------------------------- *)

type operator_harm = {
  operator : string;
  domains : float; (* HT-weighted domain count *)
  window_days : float; (* weighted mean vulnerability window, days *)
  severity : float; (* weighted mean misconfiguration severity *)
  worst_misconfig : string; (* label of the worst misconfig among its domains *)
  harm : float; (* sum of weight * window_days * (1 + severity) *)
}

type harm_acc = {
  mutable a_weight : float;
  mutable a_window : float; (* weight-weighted window-day sum *)
  mutable a_severity : float; (* weight-weighted severity sum *)
  mutable a_worst : int;
  mutable a_worst_label : string;
  mutable a_harm : float;
}

let seconds_per_day = 86_400.0

let rank_operators ~world ~(windows : Vuln_window.window list) =
  let by_domain = Hashtbl.create 4096 in
  List.iter (fun (w : Vuln_window.window) -> Hashtbl.replace by_domain w.domain w) windows;
  let accs : (string, harm_acc) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun d ->
      if Simnet.World.domain_has_https d then begin
        let name = Simnet.World.domain_name d in
        let weight = Simnet.World.domain_weight d in
        let misconfig = Simnet.World.domain_misconfig d in
        let severity = float_of_int (Simnet.Profile.misconfig_severity misconfig) in
        let window_days =
          match Hashtbl.find_opt by_domain name with
          | None -> 0.0
          | Some w -> float_of_int w.Vuln_window.seconds /. seconds_per_day
        in
        let op = Simnet.World.domain_operator d in
        let acc =
          match Hashtbl.find_opt accs op with
          | Some a -> a
          | None ->
              let a =
                {
                  a_weight = 0.0;
                  a_window = 0.0;
                  a_severity = 0.0;
                  a_worst = -1;
                  a_worst_label = "clean";
                  a_harm = 0.0;
                }
              in
              Hashtbl.replace accs op a;
              a
        in
        acc.a_weight <- acc.a_weight +. weight;
        acc.a_window <- acc.a_window +. (weight *. window_days);
        acc.a_severity <- acc.a_severity +. (weight *. severity);
        let sev_int = Simnet.Profile.misconfig_severity misconfig in
        if sev_int > acc.a_worst then begin
          acc.a_worst <- sev_int;
          acc.a_worst_label <- Simnet.Profile.misconfig_label misconfig
        end;
        (* The combined-harm model: every represented domain contributes
           its window scaled by (1 + severity), so a clean operator still
           ranks by pure shortcut exposure while a misconfigured one is
           amplified. *)
        acc.a_harm <- acc.a_harm +. (weight *. window_days *. (1.0 +. severity))
      end)
    (Simnet.World.domains world);
  Hashtbl.fold
    (fun operator a acc ->
      {
        operator;
        domains = a.a_weight;
        window_days = (if a.a_weight > 0.0 then a.a_window /. a.a_weight else 0.0);
        severity = (if a.a_weight > 0.0 then a.a_severity /. a.a_weight else 0.0);
        worst_misconfig = a.a_worst_label;
        harm = a.a_harm;
      }
      :: acc)
    accs []
  |> List.sort (fun a b ->
         (* Highest harm first; operator name breaks ties so the table
            is deterministic. *)
         match compare b.harm a.harm with 0 -> compare a.operator b.operator | c -> c)

let render_harm ?(limit = 15) harms =
  let rows =
    List.filteri (fun i _ -> i < limit) harms
    |> List.map (fun h ->
           [
             h.operator;
             Report.fmt_count h.domains;
             Report.fmt_float ~digits:1 h.window_days;
             Report.fmt_float ~digits:2 h.severity;
             h.worst_misconfig;
             Report.fmt_count h.harm;
           ])
  in
  Report.section "Operator harm ranking (window-days x (1 + misconfig severity), HT-weighted)"
  ^ "\n"
  ^ Report.table
      ~headers:[ "operator"; "domains"; "avg window (d)"; "severity"; "worst misconfig"; "harm" ]
      ~rows

(* --- Cross-regional inconsistency ------------------------------------------ *)

type inconsistency = {
  regions : string list; (* regions observed, in first-appearance order *)
  population : float; (* weighted domains observed OK from >= 2 regions *)
  inconsistent : float; (* weighted domains whose fingerprints differ *)
  by_operator : (string * float) list; (* weighted inconsistent share, desc *)
}

(* A handshake fingerprint: the negotiated suite plus the sizes of the
   key-exchange values. Weak-DH downgrades change the DHE value length,
   static-only menus change the suite, stale preference orders change
   which suite wins — all visible without any ground-truth access, as a
   real cross-regional scanner would see them. *)
let fingerprint (c : Scanner.Observation.conn) =
  Printf.sprintf "%s:%d:%d"
    (match c.Scanner.Observation.cipher with
    | None -> "-"
    | Some s -> string_of_int (Tls.Types.suite_to_int s))
    (match c.Scanner.Observation.dhe_value with None -> 0 | Some v -> String.length v)
    (match c.Scanner.Observation.ecdhe_value with None -> 0 | Some v -> String.length v)

let inconsistency ~world ~(rows : Scanner.Observation.conn list) =
  let regions = ref [] in
  (* (domain, region) -> sorted distinct fingerprints *)
  let fps : (string * string, string list) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun (c : Scanner.Observation.conn) ->
      if c.Scanner.Observation.ok then begin
        let r = c.Scanner.Observation.region in
        if not (List.mem r !regions) then regions := r :: !regions;
        let key = (c.Scanner.Observation.domain, r) in
        let fp = fingerprint c in
        let existing = Option.value ~default:[] (Hashtbl.find_opt fps key) in
        if not (List.mem fp existing) then
          Hashtbl.replace fps key (List.sort compare (fp :: existing))
      end)
    rows;
  let regions = List.rev !regions in
  let population = ref 0.0 and inconsistent = ref 0.0 in
  let by_op : (string, float) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun d ->
      let name = Simnet.World.domain_name d in
      let observed =
        List.filter_map (fun r -> Hashtbl.find_opt fps (name, r)) regions
      in
      match observed with
      | [] | [ _ ] -> () (* seen from < 2 regions: inconsistency undefined *)
      | first :: rest ->
          let weight = Simnet.World.domain_weight d in
          population := !population +. weight;
          if List.exists (fun fp -> fp <> first) rest then begin
            inconsistent := !inconsistent +. weight;
            let op = Simnet.World.domain_operator d in
            Hashtbl.replace by_op op
              (weight +. Option.value ~default:0.0 (Hashtbl.find_opt by_op op))
          end)
    (Simnet.World.domains world);
  let by_operator =
    Hashtbl.fold (fun op w acc -> (op, w) :: acc) by_op []
    |> List.sort (fun (oa, wa) (ob, wb) ->
           match compare wb wa with 0 -> compare oa ob | c -> c)
  in
  { regions; population = !population; inconsistent = !inconsistent; by_operator }

let render_inconsistency (i : inconsistency) =
  let headline =
    Printf.sprintf "regions: %s\npopulation (seen from >= 2 regions, weighted): %s\ninconsistent domains (weighted): %s (%s)"
      (String.concat " " i.regions)
      (Report.fmt_count i.population)
      (Report.fmt_count i.inconsistent)
      (if i.population > 0.0 then Report.fmt_pct (i.inconsistent /. i.population)
       else Report.fmt_pct 0.0)
  in
  let rows =
    List.map (fun (op, w) -> [ op; Report.fmt_count w ]) i.by_operator
  in
  Report.section "Cross-regional configuration inconsistency (after Alashwali et al.)"
  ^ "\n" ^ headline ^ "\n\n"
  ^
  if rows = [] then "(no inconsistent operators observed)"
  else Report.table ~headers:[ "operator"; "inconsistent domains (weighted)" ] ~rows
