(* Weighted descriptive statistics for the analyses: empirical CDFs,
   percentiles and share-of-population counts. Weights are the sampling
   weights the world assigns (how many real Top Million domains a sampled
   domain represents), so weighted fractions estimate the fractions the
   paper reports. *)

type weighted = { value : float; weight : float }

let total_weight points = List.fold_left (fun acc p -> acc +. p.weight) 0.0 points

(* Weighted fraction of points satisfying a predicate. *)
let fraction points pred =
  let total = total_weight points in
  if total <= 0.0 then 0.0
  else
    List.fold_left (fun acc p -> if pred p.value then acc +. p.weight else acc) 0.0 points
    /. total

(* An empirical CDF: sorted (value, cumulative fraction) steps. *)
type cdf = (float * float) list

let cdf points : cdf =
  let sorted = List.sort (fun a b -> compare a.value b.value) points in
  let total = total_weight sorted in
  if total <= 0.0 then []
  else begin
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    (* Cumulative heights, then collapse duplicate values to their final
       height. Array-based and built back to front: stack depth stays
       O(1) at the million-point populations the north star calls for
       (the previous non-tail [dedup] overflowed there). *)
    let cum = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. arr.(i).weight;
      cum.(i) <- !acc /. total
    done;
    let steps = ref [] in
    for i = n - 1 downto 0 do
      if i = n - 1 || arr.(i).value <> arr.(i + 1).value then
        steps := (arr.(i).value, cum.(i)) :: !steps
    done;
    !steps
  end

(* Fraction of mass at or below [x]. *)
let cdf_at (c : cdf) x =
  let rec go last = function
    | [] -> last
    | (v, f) :: rest -> if v <= x then go f rest else last
  in
  go 0.0 c

let percentile points q =
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of range";
  let sorted = List.sort (fun a b -> compare a.value b.value) points in
  let total = total_weight sorted in
  if total <= 0.0 then nan
  else begin
    let target = q *. total in
    let rec go acc = function
      | [] -> nan
      | [ p ] -> p.value
      | p :: rest -> if acc +. p.weight >= target then p.value else go (acc +. p.weight) rest
    in
    go 0.0 sorted
  end

(* Multi-quantile in one sort + one walk. The walk reproduces
   [percentile]'s accumulation exactly: targets are served in ascending
   order against the same left-to-right prefix sums, and the first
   point whose cumulative weight reaches a target is non-decreasing in
   the target, so pausing the walk at each served target loses
   nothing. The terminal [p] fallback mirrors [percentile]'s. *)
let quantiles points qs =
  List.iter
    (fun q -> if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantiles: q out of range")
    qs;
  let sorted = List.sort (fun a b -> compare a.value b.value) points in
  let total = total_weight sorted in
  let n = List.length qs in
  if total <= 0.0 then List.map (fun _ -> nan) qs
  else begin
    let order = List.sort compare (List.mapi (fun i q -> (q *. total, i)) qs) in
    let out = Array.make n nan in
    let rec walk acc pts targets =
      match (targets, pts) with
      | [], _ | _, [] -> ()
      | (_, i) :: trest, [ p ] ->
          out.(i) <- p.value;
          walk acc pts trest
      | (target, i) :: trest, p :: rest ->
          if acc +. p.weight >= target then begin
            out.(i) <- p.value;
            walk acc pts trest
          end
          else walk (acc +. p.weight) rest targets
    in
    walk 0.0 sorted order;
    List.init n (Array.get out)
  end

let median points = percentile points 0.5

let mean points =
  let total = total_weight points in
  if total <= 0.0 then nan
  else List.fold_left (fun acc p -> acc +. (p.value *. p.weight)) 0.0 points /. total

(* Weighted histogram over explicit bucket upper bounds (ascending); the
   final bucket is open-ended. Returns per-bucket weight. Bucket lookup
   is a binary search, not a linear rescan per point. *)
let histogram ~bounds points =
  let bounds_arr = Array.of_list bounds in
  let nb = Array.length bounds_arr in
  let buckets = Array.make (nb + 1) 0.0 in
  (* Smallest i with v <= bounds.(i), or nb for the open bucket (which
     also absorbs NaN, as the linear scan did). *)
  let bucket_of v =
    if nb = 0 || not (v <= bounds_arr.(nb - 1)) then nb
    else begin
      let lo = ref 0 and hi = ref (nb - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if v <= bounds_arr.(mid) then hi := mid else lo := mid + 1
      done;
      !lo
    end
  in
  List.iter
    (fun p ->
      let i = bucket_of p.value in
      buckets.(i) <- buckets.(i) +. p.weight)
    points;
  buckets

(* Human-readable durations for axis labels. *)
let pp_duration ppf seconds =
  let s = int_of_float seconds in
  if s < 60 then Format.fprintf ppf "%ds" s
  else if s < 3600 then Format.fprintf ppf "%dm" (s / 60)
  else if s < 86_400 then Format.fprintf ppf "%dh" (s / 3600)
  else Format.fprintf ppf "%dd" (s / 86_400)

let duration_to_string seconds = Format.asprintf "%a" pp_duration seconds
