(* Re-export: the implementation moved to {!Scanner.Union_find} so the
   parallel campaign sharder (which the analysis layer sits above) can
   reuse the exact service-group machinery. *)
include Scanner.Union_find
