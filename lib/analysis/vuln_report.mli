(** Operator-level combined-harm ranking (shortcut vulnerability windows
    x misconfiguration severity, Horvitz-Thompson weighted) and the
    cross-regional inconsistency table (after Alashwali et al.). *)

type operator_harm = {
  operator : string;
  domains : float;  (** HT-weighted domain count *)
  window_days : float;  (** weighted mean vulnerability window, days *)
  severity : float;  (** weighted mean misconfiguration severity *)
  worst_misconfig : string;
      (** {!Simnet.Profile.misconfig_label} of the worst domain *)
  harm : float;  (** sum of weight * window_days * (1 + severity) *)
}

val rank_operators :
  world:Simnet.World.t -> windows:Vuln_window.window list -> operator_harm list
(** Highest harm first; ties broken by operator name (deterministic). *)

val render_harm : ?limit:int -> operator_harm list -> string

type inconsistency = {
  regions : string list;  (** regions observed, first-appearance order *)
  population : float;  (** weighted domains observed OK from >= 2 regions *)
  inconsistent : float;  (** weighted domains whose fingerprints differ *)
  by_operator : (string * float) list;
      (** weighted inconsistent domains per operator, descending *)
}

val fingerprint : Scanner.Observation.conn -> string
(** Handshake fingerprint: negotiated suite + key-exchange value sizes —
    what a scanner sees without ground-truth access. *)

val inconsistency :
  world:Simnet.World.t -> rows:Scanner.Observation.conn list -> inconsistency
(** [rows] is a cross-vantage observation archive; [world] supplies
    HT weights and operator attribution (identical across regions). *)

val render_inconsistency : inconsistency -> string
