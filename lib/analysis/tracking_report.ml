(* Latency-saved vs tracking-window analysis over traffic rows — see the
   interface for the definitions. The fold holds per-chain and per-class
   aggregates only, so memory scales with the number of chains (user ×
   visited-scope pairs), never with the row count. *)

type meta = { policy : string; ticket_lifetime : int; users : int; days : int }

type class_row = {
  cls : string;
  conns : int;
  weight : float;
  ok_rate : float;
  resume_rate : float;
  saved_mean_ms : float;
  saved_total_ws : float;
  saved_p50_ms : float;
  saved_p90_ms : float;
  chains : int;
  linkable : int;
  window_p50_s : float;
  window_p90_s : float;
  window_max_s : float;
  hops_mean : float;
  tp_chains : int;
  tp_primaries_mean : float;
  tp_primaries_max : int;
}

type t = { meta : meta; rows : class_row list }

(* --- Accumulation ------------------------------------------------------------- *)

type chain_rec = {
  c_op : string;
  c_weight : float; (* HT weight of the chain's first-seen hostname *)
  mutable c_first : int;
  mutable c_last : int;
  mutable c_hops : int;
  mutable c_tp : bool; (* some connection was a subresource fetch *)
  mutable c_pages : string list; (* distinct first-party contexts *)
}

type cls_acc = {
  mutable a_conns : int;
  mutable a_weight : float;
  mutable a_ok_w : float;
  mutable a_resumed_w : float;
  mutable a_saved_w : float; (* sum of weight * saved_ms *)
  mutable a_saved : Stats.weighted list; (* saved_ms over resumed conns *)
}

type acc = {
  acc_meta : meta;
  hosts : (string, Traffic.Row.host_info) Hashtbl.t;
  classes : (string, cls_acc) Hashtbl.t;
  chains : (int * int, chain_rec) Hashtbl.t; (* keyed by (user, chain) *)
}

let create ~meta ~hosts =
  let tbl = Hashtbl.create (List.length hosts * 2) in
  List.iter (fun (name, info) -> Hashtbl.replace tbl name info) hosts;
  { acc_meta = meta; hosts = tbl; classes = Hashtbl.create 64; chains = Hashtbl.create 4096 }

let cls_for acc op =
  match Hashtbl.find_opt acc.classes op with
  | Some c -> c
  | None ->
      let c =
        { a_conns = 0; a_weight = 0.0; a_ok_w = 0.0; a_resumed_w = 0.0; a_saved_w = 0.0; a_saved = [] }
      in
      Hashtbl.add acc.classes op c;
      c

let add acc (r : Traffic.Row.t) =
  let op, w =
    match Hashtbl.find_opt acc.hosts r.hostname with
    | Some i -> (i.Traffic.Row.h_operator, i.Traffic.Row.h_weight)
    | None -> ("?", 1.0)
  in
  let c = cls_for acc op in
  c.a_conns <- c.a_conns + 1;
  c.a_weight <- c.a_weight +. w;
  if r.ok then c.a_ok_w <- c.a_ok_w +. w;
  let resumed = r.ok && r.resumed <> Traffic.Row.R_no in
  if resumed then begin
    let saved = float_of_int (Traffic.Latency.saved_ms r.hostname) in
    c.a_resumed_w <- c.a_resumed_w +. w;
    c.a_saved_w <- c.a_saved_w +. (w *. saved);
    c.a_saved <- { Stats.value = saved; weight = w } :: c.a_saved
  end;
  if r.chain > 0 then begin
    let key = (r.user, r.chain) in
    let ch =
      match Hashtbl.find_opt acc.chains key with
      | Some ch -> ch
      | None ->
          let ch =
            {
              c_op = op;
              c_weight = w;
              c_first = r.time;
              c_last = r.time;
              c_hops = 0;
              c_tp = false;
              c_pages = [];
            }
          in
          Hashtbl.add acc.chains key ch;
          ch
    in
    if r.time < ch.c_first then ch.c_first <- r.time;
    if r.time > ch.c_last then ch.c_last <- r.time;
    ch.c_hops <- ch.c_hops + 1;
    if not r.primary then ch.c_tp <- true;
    if not (List.mem r.page_host ch.c_pages) then ch.c_pages <- r.page_host :: ch.c_pages
  end

(* --- Finalization ------------------------------------------------------------- *)

let merge_cls into from =
  into.a_conns <- into.a_conns + from.a_conns;
  into.a_weight <- into.a_weight +. from.a_weight;
  into.a_ok_w <- into.a_ok_w +. from.a_ok_w;
  into.a_resumed_w <- into.a_resumed_w +. from.a_resumed_w;
  into.a_saved_w <- into.a_saved_w +. from.a_saved_w;
  into.a_saved <- List.rev_append from.a_saved into.a_saved

let fresh_cls () =
  { a_conns = 0; a_weight = 0.0; a_ok_w = 0.0; a_resumed_w = 0.0; a_saved_w = 0.0; a_saved = [] }

let finalize acc =
  let total_w = Hashtbl.fold (fun _ c t -> t +. c.a_weight) acc.classes 0.0 in
  (* Operators above 1% of weighted connections get their own row. *)
  let named =
    Hashtbl.fold
      (fun op c l -> if c.a_weight >= 0.01 *. total_w then (op, c.a_weight) :: l else l)
      acc.classes []
    |> List.sort (fun (oa, wa) (ob, wb) -> if wa <> wb then compare wb wa else compare oa ob)
    |> List.map fst
  in
  let display op = if List.mem op named then op else "(other)" in
  let merged : (string, cls_acc) Hashtbl.t = Hashtbl.create 32 in
  let merged_for d =
    match Hashtbl.find_opt merged d with
    | Some c -> c
    | None ->
        let c = fresh_cls () in
        Hashtbl.add merged d c;
        c
  in
  Hashtbl.iter
    (fun op c ->
      merge_cls (merged_for (display op)) c;
      merge_cls (merged_for "(all)") c)
    acc.classes;
  let chains_by : (string, chain_rec list ref) Hashtbl.t = Hashtbl.create 32 in
  let chains_for d =
    match Hashtbl.find_opt chains_by d with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add chains_by d l;
        l
  in
  Hashtbl.iter
    (fun _ ch ->
      chains_for (display ch.c_op) := ch :: !(chains_for (display ch.c_op));
      chains_for "(all)" := ch :: !(chains_for "(all)"))
    acc.chains;
  let row_of d (c : cls_acc) =
    let chains = match Hashtbl.find_opt chains_by d with Some l -> !l | None -> [] in
    let linkable = List.filter (fun ch -> ch.c_hops >= 2) chains in
    let windows =
      List.map
        (fun ch -> { Stats.value = float_of_int (ch.c_last - ch.c_first); weight = ch.c_weight })
        linkable
    in
    let saved_qs = Stats.quantiles c.a_saved [ 0.5; 0.9 ] in
    let window_qs = Stats.quantiles windows [ 0.5; 0.9 ] in
    let tp = List.filter (fun ch -> ch.c_tp) linkable in
    let tp_pages = List.map (fun ch -> List.length ch.c_pages) tp in
    let safe_div a b = if b > 0.0 then a /. b else 0.0 in
    {
      cls = d;
      conns = c.a_conns;
      weight = c.a_weight;
      ok_rate = safe_div c.a_ok_w c.a_weight;
      resume_rate = safe_div c.a_resumed_w c.a_weight;
      saved_mean_ms = safe_div c.a_saved_w c.a_weight;
      saved_total_ws = c.a_saved_w /. 1000.0;
      saved_p50_ms = List.nth saved_qs 0;
      saved_p90_ms = List.nth saved_qs 1;
      chains = List.length chains;
      linkable = List.length linkable;
      window_p50_s = List.nth window_qs 0;
      window_p90_s = List.nth window_qs 1;
      window_max_s =
        List.fold_left (fun m w -> max m w.Stats.value) 0.0 windows;
      hops_mean =
        safe_div
          (float_of_int (List.fold_left (fun a ch -> a + ch.c_hops) 0 linkable))
          (float_of_int (List.length linkable));
      tp_chains = List.length tp;
      tp_primaries_mean =
        safe_div
          (float_of_int (List.fold_left ( + ) 0 tp_pages))
          (float_of_int (List.length tp));
      tp_primaries_max = List.fold_left max 0 tp_pages;
    }
  in
  let order =
    named @ (if Hashtbl.mem merged "(other)" then [ "(other)" ] else []) @ [ "(all)" ]
  in
  {
    meta = acc.acc_meta;
    rows = List.filter_map (fun d -> Option.map (row_of d) (Hashtbl.find_opt merged d)) order;
  }

let of_rows ~meta ~hosts rows =
  let acc = create ~meta ~hosts in
  List.iter (add acc) rows;
  finalize acc

let of_sink ~dir =
  let ( let* ) = Result.bind in
  let* manifest = Traffic.Traffic_sink.manifest ~dir in
  let get key = List.assoc_opt key manifest in
  let int_of key = Option.bind (get key) int_of_string_opt in
  let meta =
    {
      policy = Option.value ~default:"?" (get "policy");
      ticket_lifetime = Option.value ~default:0 (int_of "ticket_lifetime");
      users = Option.value ~default:0 (int_of "users");
      days = Option.value ~default:0 (int_of "days");
    }
  in
  let* ids = Traffic.Traffic_sink.shard_ids ~dir in
  match ids with
  | [] -> Error (Printf.sprintf "%s holds no traffic streams" dir)
  | first :: _ ->
      let* _, (_, _, hosts) = Traffic.Traffic_sink.read_shard ~dir ~shard:first in
      let acc = create ~meta ~hosts in
      let* () =
        List.fold_left
          (fun st shard ->
            let* () = st in
            let* rows, _ = Traffic.Traffic_sink.read_shard ~dir ~shard in
            List.iter (add acc) rows;
            Ok ())
          (Ok ()) ids
      in
      Ok (finalize acc)

(* --- Rendering ---------------------------------------------------------------- *)

let render t =
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "Tracking exposure vs handshake latency (policy=%s, ticket-lifetime=%s, %d users, %d days)\n"
    t.meta.policy
    (if t.meta.ticket_lifetime = 0 then "advertised"
     else string_of_int t.meta.ticket_lifetime ^ "s")
    t.meta.users t.meta.days;
  Printf.bprintf b
    "%-14s %9s %7s %8s %9s %9s %8s %9s %9s %10s %10s %6s %8s %8s\n"
    "operator" "conns" "resume" "saved/c" "savedp50" "savedp90" "chains" "linkable"
    "windw p50" "windw p90" "windw max" "hops" "3p-chain" "3p-pages";
  let dur s = if Float.is_nan s then "-" else Stats.duration_to_string s in
  let ms v = if Float.is_nan v then "-" else Printf.sprintf "%.0fms" v in
  List.iter
    (fun r ->
      Printf.bprintf b
        "%-14s %9d %6.1f%% %7.1fms %9s %9s %8d %9d %10s %10s %10s %6.1f %8d %5.1f/%d\n"
        r.cls r.conns (100.0 *. r.resume_rate) r.saved_mean_ms (ms r.saved_p50_ms)
        (ms r.saved_p90_ms) r.chains r.linkable (dur r.window_p50_s) (dur r.window_p90_s)
        (dur r.window_max_s) r.hops_mean r.tp_chains r.tp_primaries_mean r.tp_primaries_max)
    t.rows;
  Buffer.contents b
