(** Weighted descriptive statistics: empirical CDFs, percentiles and
    share-of-population counts. Weights are the world's sampling weights,
    so weighted fractions estimate the Top Million fractions the paper
    reports. *)

type weighted = { value : float; weight : float }

val total_weight : weighted list -> float

val fraction : weighted list -> (float -> bool) -> float
(** Weighted share of points satisfying the predicate (0 on empty). *)

type cdf = (float * float) list
(** Sorted (value, cumulative fraction) steps. *)

val cdf : weighted list -> cdf

val cdf_at : cdf -> float -> float
(** Fraction of mass at or below [x]. *)

val percentile : weighted list -> float -> float
(** [percentile points q] with [q] in [0,1]; [nan] on empty input. *)

val quantiles : weighted list -> float list -> float list
(** [quantiles points qs] computes every requested quantile from a
    single sort and one cumulative walk — agreeing exactly (to the
    float) with calling {!percentile} once per [q], which re-sorts per
    call. The latency tables ask for several quantiles of the same
    population; this is their single-pass path. [nan]s on empty input;
    raises [Invalid_argument] if any [q] is outside [0,1]. *)

val median : weighted list -> float
val mean : weighted list -> float

val histogram : bounds:float list -> weighted list -> float array
(** Per-bucket weight over ascending upper bounds; the final bucket is
    open-ended. *)

val pp_duration : Format.formatter -> float -> unit
val duration_to_string : float -> string
