(* Render the fault layer's measurement-loss funnel the way the paper's
   §3 presents its scan funnel: a per-day table from probes issued down
   to observations kept, with losses split by cause. Day indices are
   normalized to the first recorded day so the table reads "day 0, day
   1, …" regardless of the campaign's absolute start. *)

let cause_columns = Faults.Fault.all

let day_row ~day0 funnel day =
  let t = Faults.Funnel.day_totals funnel ~day in
  let cause f =
    match List.assoc_opt f t.Faults.Funnel.t_losses with
    | Some n -> string_of_int n
    | None -> "0"
  in
  [
    string_of_int (day - day0);
    string_of_int t.Faults.Funnel.t_probes;
    string_of_int t.Faults.Funnel.t_attempts;
    string_of_int t.Faults.Funnel.t_retries;
    string_of_int t.Faults.Funnel.t_recovered;
    string_of_int t.Faults.Funnel.t_slow;
    string_of_int t.Faults.Funnel.t_successes;
    string_of_int (Faults.Funnel.lost t);
  ]
  @ List.map cause cause_columns

let render ?(title = "Measurement-loss funnel (per scan day)") funnel =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Report.section title);
  Buffer.add_char buf '\n';
  (match Faults.Funnel.days funnel with
  | [] -> Buffer.add_string buf "no probes recorded\n"
  | day0 :: _ as days ->
      let headers =
        [ "day"; "probes"; "attempts"; "retries"; "recovered"; "slow"; "ok"; "lost" ]
        @ List.map Faults.Fault.to_string cause_columns
      in
      let rows = List.map (day_row ~day0 funnel) days in
      Buffer.add_string buf (Report.table ~headers ~rows);
      let t = Faults.Funnel.totals funnel in
      let probes = float_of_int t.Faults.Funnel.t_probes in
      if t.Faults.Funnel.t_probes > 0 then begin
        Buffer.add_string buf
          (Printf.sprintf "\ntotal: %d probes, %d attempts, %d retries -> %d ok (%s), %d lost (%s)\n"
             t.Faults.Funnel.t_probes t.Faults.Funnel.t_attempts t.Faults.Funnel.t_retries
             t.Faults.Funnel.t_successes
             (Report.fmt_pct (float_of_int t.Faults.Funnel.t_successes /. probes))
             (Faults.Funnel.lost t)
             (Report.fmt_pct (float_of_int (Faults.Funnel.lost t) /. probes)));
        (match t.Faults.Funnel.t_losses with
        | [] -> ()
        | losses ->
            Buffer.add_string buf "loss causes: ";
            Buffer.add_string buf
              (String.concat ", "
                 (List.map
                    (fun (f, n) -> Printf.sprintf "%s %d" (Faults.Fault.to_string f) n)
                    losses));
            Buffer.add_char buf '\n');
        (* Supervised worker failures get their own row: probes booked
           under [Worker_crash] were never attempted at all (a shard
           exhausted its restarts and was abandoned), which is a
           different kind of loss than any per-connection fault and the
           signature of a degraded — but completed — campaign. *)
        (match List.assoc_opt Faults.Fault.Worker_crash t.Faults.Funnel.t_losses with
        | Some n when n > 0 ->
            Buffer.add_string buf
              (Printf.sprintf "supervised shard failures: %d probes abandoned (%s of probes)\n" n
                 (Report.fmt_pct (float_of_int n /. probes)))
        | _ -> ());
        (* Byzantine peers get the same treatment: responses the peer
           actively corrupted, split between bytes the parsers rejected
           outright and bytes that decoded into protocol nonsense. *)
        let byz_lost f =
          match List.assoc_opt f t.Faults.Funnel.t_losses with
          | Some n -> n
          | None -> 0
        in
        let malformed = byz_lost Faults.Fault.Malformed_response in
        let violations = byz_lost Faults.Fault.Protocol_violation in
        if malformed + violations > 0 then
          Buffer.add_string buf
            (Printf.sprintf
               "byzantine responses: %d probes lost (%s of probes): %d malformed, %d protocol violations\n"
               (malformed + violations)
               (Report.fmt_pct (float_of_int (malformed + violations) /. probes))
               malformed violations)
      end);
  Buffer.add_string buf
    "\nThe paper's Section 3 scans lose a small fraction of each day's probes to\n\
     transient network failures; this funnel is the simulated analog, with the\n\
     retry machinery's recoveries broken out per cause.\n";
  Buffer.contents buf
