(** §3-style rendering of the fault layer's measurement-loss funnel: a
    per-day table (probes, attempts, retries, successes, per-cause
    losses) plus totals. *)

val render : ?title:string -> Faults.Funnel.t -> string
