(* Service groups: sets of domains sharing TLS secret state (Section 5).
   Three constructions, one per mechanism:

   - session caches (Table 5): union the edges observed by the
     cross-domain resumption probe, transitively;
   - STEKs (Table 6): domains that ever presented the same STEK key name;
   - Diffie-Hellman values (Table 7): domains that ever presented the
     same server (EC)DHE public value.

   Group sizes are reported both as sampled-member counts and as weighted
   counts (estimating real Top Million domain counts). *)

(* The union-find implementation lives in the scanner layer (the
   parallel campaign sharder partitions by the same shared-state
   relation); alias it rather than maintaining a duplicate here. *)
module Union_find = Scanner.Union_find

type group = {
  members : string list;
  sampled_size : int;
  weighted_size : float;
  label : string; (* dominant operator, for presentation *)
}

let build_groups ~world members_of_key =
  let uf = Union_find.create () in
  Hashtbl.iter
    (fun _key members ->
      match members with
      | [] -> ()
      | first :: rest ->
          (* Register singletons too: a domain sharing with nobody is its
             own (singleton) service group, like the paper's 86%. *)
          Union_find.add uf first;
          List.iter (fun m -> Union_find.union uf first m) rest)
    members_of_key;
  let weight_of name =
    match Simnet.World.find_domain world name with
    | Some d -> Simnet.World.domain_weight d
    | None -> 1.0
  in
  let operator_of name =
    match Simnet.World.find_domain world name with
    | Some d -> Simnet.World.domain_operator d
    | None -> "?"
  in
  Union_find.groups uf
  |> List.map (fun members ->
         let weighted_size = List.fold_left (fun acc m -> acc +. weight_of m) 0.0 members in
         (* Label by the operator contributing the most weight. *)
         let per_op = Hashtbl.create 8 in
         List.iter
           (fun m ->
             let op = operator_of m in
             Hashtbl.replace per_op op
               (weight_of m +. Option.value ~default:0.0 (Hashtbl.find_opt per_op op)))
           members;
         let label =
           Hashtbl.fold
             (fun op w (best_op, best_w) -> if w > best_w then (op, w) else (best_op, best_w))
             per_op ("?", 0.0)
           |> fst
         in
         { members; sampled_size = List.length members; weighted_size; label })
  |> List.sort (fun a b -> compare b.weighted_size a.weighted_size)

(* --- Per-mechanism constructors --------------------------------------------- *)

(* From key (an identifier string) to the domains that presented it. *)
let index_of_values pairs =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun (key, domain) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      if not (List.exists (String.equal domain) existing) then
        Hashtbl.replace tbl key (domain :: existing))
    pairs;
  tbl

(* STEK groups from burst-scan results: every (stek id, domain) sighting. *)
let stek_groups ~world (results : Scanner.Burst_scan.domain_result list) =
  let pairs =
    List.concat_map
      (fun (r : Scanner.Burst_scan.domain_result) ->
        Scanner.Burst_scan.result_values ~field:`Stek r
        |> List.map (fun v -> (v, r.Scanner.Burst_scan.domain)))
      results
  in
  build_groups ~world (index_of_values pairs)

(* Diffie-Hellman groups: DHE and ECDHE value sightings combined, as in
   the paper's Table 7. *)
let dh_groups ~world (results : Scanner.Burst_scan.domain_result list) =
  let pairs =
    List.concat_map
      (fun (r : Scanner.Burst_scan.domain_result) ->
        let dhe =
          Scanner.Burst_scan.result_values ~field:`Dhe r
          |> List.map (fun v -> ("dhe:" ^ v, r.Scanner.Burst_scan.domain))
        in
        let ecdhe =
          Scanner.Burst_scan.result_values ~field:`Ecdhe r
          |> List.map (fun v -> ("ec:" ^ v, r.Scanner.Burst_scan.domain))
        in
        dhe @ ecdhe)
      results
  in
  build_groups ~world (index_of_values pairs)

(* Session-cache groups from cross-probe edges. Participants that shared
   with nobody form singleton groups, like the paper's 86%. *)
let session_cache_groups ~world (result : Scanner.Cross_probe.result) =
  let tbl = Hashtbl.create 1024 in
  List.iteri
    (fun i (e : Scanner.Cross_probe.edge) ->
      Hashtbl.replace tbl (Printf.sprintf "edge%d" i)
        [ e.Scanner.Cross_probe.from_domain; e.Scanner.Cross_probe.to_domain ])
    result.Scanner.Cross_probe.edges;
  List.iteri
    (fun i name -> Hashtbl.replace tbl (Printf.sprintf "self%d" i) [ name ])
    result.Scanner.Cross_probe.participants;
  build_groups ~world tbl

(* Concentration: the weighted share of a population covered by the K
   largest groups — the section 6 "concentration of secrets" measure
   (the ten largest shared caches covered 15% of the Top Million; the two
   largest STEK groups 20% of HTTPS sites). *)
let top_coverage ?(k = 10) groups ~population_weight =
  if population_weight <= 0.0 then 0.0
  else
    List.filteri (fun i _ -> i < k) groups
    |> List.fold_left (fun acc g -> acc +. g.weighted_size) 0.0
    |> fun covered -> covered /. population_weight

(* Summary shares: how many groups, how many singletons, the largest. *)
type summary = {
  n_groups : int;
  n_singletons : int;
  largest : group option;
  multi_domain_weight : float; (* weighted domains sharing with >= 1 other *)
}

let summarize groups =
  {
    n_groups = List.length groups;
    n_singletons = List.length (List.filter (fun g -> g.sampled_size = 1) groups);
    largest = (match groups with [] -> None | g :: _ -> Some g);
    multi_domain_weight =
      List.fold_left
        (fun acc g -> if g.sampled_size > 1 then acc +. g.weighted_size else acc)
        0.0 groups;
  }
