(* Finite-field Diffie-Hellman: groups, key generation, shared-secret
   computation, plus Miller-Rabin primality and deterministic safe-prime
   group generation.

   Two kinds of groups are provided. [oakley2] is the real 1024-bit MODP
   group (RFC 2409 Second Oakley Group) that production TLS stacks shipped
   for DHE; it is exercised by tests, examples and benches. Large-scale
   simulation sweeps instead use [generate ~bits ~seed] safe-prime groups
   of ~64..128 bits so that tens of millions of simulated handshakes stay
   tractable — the key exchange is still a real modular-exponentiation DH,
   just over smaller parameters (documented in DESIGN.md). *)

type group = {
  name : string;
  p : Bignum.t; (* prime modulus *)
  g : Bignum.t; (* generator *)
  q_bits : int; (* exponent size drawn for private values *)
  mont : Bignum.mont; (* cached Montgomery context for p *)
  g_fixed : Bignum.fixed_base; (* comb table for g^priv in gen_keypair *)
}

let make_group ~name ~p ~g ~q_bits =
  let mont = Bignum.mont_of_modulus p in
  { name; p; g; q_bits; mont; g_fixed = Bignum.fixed_base mont g ~max_bits:q_bits }

let group_name g = g.name
let group_p g = g.p
let group_g g = g.g

(* RFC 2409 section 6.2 — 1024-bit MODP ("Second Oakley Group"),
   p = 2^1024 - 2^960 - 1 + 2^64 * (floor(2^894 pi) + 129093), generator 2.
   Primality is verified by a test. *)
let oakley2 =
  let p =
    Bignum.of_hex
      ("FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
     ^ "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
     ^ "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
     ^ "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF")
  in
  make_group ~name:"modp1024(oakley2)" ~p ~g:Bignum.two ~q_bits:256

(* --- Primality ----------------------------------------------------------- *)

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139; 149;
    151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199 ]

let miller_rabin_round n ~d ~r a =
  (* n - 1 = d * 2^r with d odd; returns false iff [a] witnesses
     compositeness. *)
  let n1 = Bignum.sub n Bignum.one in
  let x = ref (Bignum.pow_mod a d n) in
  if Bignum.is_one !x || Bignum.equal !x n1 then true
  else begin
    let ok = ref false in
    let i = ref 1 in
    while (not !ok) && !i < r do
      x := Bignum.rem (Bignum.mul !x !x) n;
      if Bignum.equal !x n1 then ok := true;
      incr i
    done;
    !ok
  end

let is_probably_prime ?(rounds = 20) ?rng n =
  if Bignum.compare n Bignum.two < 0 then false
  else if Bignum.compare n (Bignum.of_int 4) < 0 then true (* 2 and 3 *)
  else if Bignum.is_even n then false
  else begin
    let divisible_by_small =
      List.exists
        (fun q ->
          let qn = Bignum.of_int q in
          Bignum.compare n qn > 0 && Bignum.is_zero (Bignum.rem n qn))
        small_primes
    in
    if divisible_by_small then
      (* n may itself be one of the small primes. *)
      List.exists (fun q -> Bignum.equal n (Bignum.of_int q)) small_primes
    else begin
      let n1 = Bignum.sub n Bignum.one in
      let r = ref 0 in
      let d = ref n1 in
      while Bignum.is_even !d do
        d := Bignum.shift_right !d 1;
        incr r
      done;
      let rng = match rng with Some r -> r | None -> Drbg.create ~seed:"mr-default" in
      let witness () =
        (* Draw a in [2, n-2]. *)
        let a = Drbg.bignum_below rng (Bignum.sub n (Bignum.of_int 3)) in
        Bignum.add a Bignum.two
      in
      let rec loop k = k = 0 || (miller_rabin_round n ~d:!d ~r:!r (witness ()) && loop (k - 1)) in
      loop rounds
    end
  end

(* --- Deterministic safe-prime group generation --------------------------- *)

(* A safe prime p = 2q + 1 with q prime; generator 4 = 2^2 lies in the
   order-q subgroup of squares, so every honestly generated public value
   lands in a prime-order group. *)
let generate_cache : (int * string, group) Hashtbl.t = Hashtbl.create 8

(* Guards [generate_cache]: parallel-campaign domains request sim groups
   concurrently, and an unsynchronized Hashtbl resize under that race can
   corrupt the table (same hazard the fixed-base comb cache in Bignum
   guards against). *)
let generate_lock = Mutex.create ()

let generate_uncached ~bits ~seed =
  if bits < 16 || bits > 256 then invalid_arg "Dh.generate: bits out of range";
  let rng = Drbg.create ~seed:(Printf.sprintf "dh-group:%s:%d" seed bits) in
  let rec search () =
    let raw = Bignum.of_bytes_be (Drbg.generate rng ((bits + 7) / 8)) in
    (* Force the top bit (so q has exactly bits-1 bits) and oddness. *)
    let q =
      Bignum.add
        (Bignum.rem raw (Bignum.shift_left Bignum.one (bits - 2)))
        (Bignum.shift_left Bignum.one (bits - 2))
    in
    let q = if Bignum.is_even q then Bignum.add_int q 1 else q in
    if not (is_probably_prime ~rounds:16 ~rng q) then search ()
    else
      let p = Bignum.add_int (Bignum.shift_left q 1) 1 in
      if is_probably_prime ~rounds:16 ~rng p then (p, q) else search ()
  in
  let p, q = search () in
  ignore q;
  make_group
    ~name:(Printf.sprintf "sim-modp%d(%s)" bits seed)
    ~p ~g:(Bignum.of_int 4) ~q_bits:(min (bits - 2) 64)

let generate ~bits ~seed =
  let cached =
    Mutex.protect generate_lock (fun () -> Hashtbl.find_opt generate_cache (bits, seed))
  in
  match cached with
  | Some g -> g
  | None ->
      (* Generate outside the lock: primality search is expensive and the
         result is deterministic in (bits, seed), so a losing racer just
         recomputes the same group. First writer wins so every caller
         shares one physical group (and its Montgomery/comb caches). *)
      let g = generate_uncached ~bits ~seed in
      Mutex.protect generate_lock (fun () ->
          match Hashtbl.find_opt generate_cache (bits, seed) with
          | Some g -> g
          | None ->
              Hashtbl.replace generate_cache (bits, seed) g;
              g)

(* --- Key exchange -------------------------------------------------------- *)

type keypair = { group : group; priv : Bignum.t; pub : Bignum.t }

let gen_keypair group rng =
  (* Short exponents: [q_bits] of entropy, never 0 or 1. *)
  let bound = Bignum.shift_left Bignum.one group.q_bits in
  let priv = Bignum.add_int (Drbg.bignum_below rng (Bignum.sub_int bound 2)) 2 in
  let pub = Bignum.pow_mod_fixed group.g_fixed priv in
  { group; priv; pub }

let public_bytes kp =
  let len = (Bignum.num_bits kp.group.p + 7) / 8 in
  Bignum.to_bytes_be ~len kp.pub

let valid_public group pub =
  (* Reject the degenerate values 0, 1 and p-1 (and out-of-range). *)
  Bignum.compare pub Bignum.one > 0
  && Bignum.compare pub (Bignum.sub_int group.p 1) < 0

let shared_secret kp ~peer_pub =
  if not (valid_public kp.group peer_pub) then Error "dh: invalid peer public value"
  else begin
    let z = Bignum.pow_mod_ctx kp.group.mont peer_pub kp.priv in
    let len = (Bignum.num_bits kp.group.p + 7) / 8 in
    Ok (Bignum.to_bytes_be ~len z)
  end

let shared_secret_exn kp ~peer_pub =
  match shared_secret kp ~peer_pub with
  | Ok z -> z
  | Error e -> invalid_arg e
