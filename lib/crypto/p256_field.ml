(* Specialized arithmetic for the NIST P-256 prime field.

   p = 2^256 - 2^224 + 2^192 + 2^96 - 1

   Elements are little-endian arrays of nine 29-bit limbs (9 * 29 = 261
   bits), always kept canonical in [0, p). The layout is chosen for
   OCaml's 63-bit native ints: a product-scanning multiply accumulates at
   most nine 58-bit limb products plus an incoming carry per column, and
   9 * (2^29 - 1)^2 + 2^33 < 2^62 never overflows. Reduction uses the
   Solinas congruences for the NIST prime (FIPS 186-4 D.2.3) on the
   sixteen 32-bit words of the double-wide product, so a full modular
   multiply is 81 native multiplies plus word shuffling -- no division,
   no Montgomery form, no allocation.

   Mutating operations take an explicit destination array; [mul], [sqr]
   and [inv] additionally take a [state] scratch record so that hot loops
   (the EC Jacobian ladder) allocate nothing per operation. A [state] is
   cheap to create and must not be shared across domains. *)

let nlimbs = 9
let limb_bits = 29
let limb_mask = (1 lsl limb_bits) - 1
let words = nlimbs

let modulus =
  Bignum.of_hex
    "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"

let zero () = Array.make nlimbs 0

(* 32-byte big-endian string -> limbs. *)
let of_bytes_be (s : string) : int array =
  if String.length s <> 32 then invalid_arg "P256_field.of_bytes_be";
  let out = Array.make nlimbs 0 in
  for i = 0 to 31 do
    let byte = Char.code (String.unsafe_get s (31 - i)) in
    let bit = 8 * i in
    let li = bit / limb_bits and off = bit mod limb_bits in
    out.(li) <- out.(li) lor ((byte lsl off) land limb_mask);
    if off > limb_bits - 8 && li + 1 < nlimbs then
      out.(li + 1) <- out.(li + 1) lor (byte lsr (limb_bits - off))
  done;
  out

let to_bytes_be (a : int array) : string =
  let b = Bytes.make 32 '\x00' in
  for i = 0 to 31 do
    let bit = 8 * i in
    let li = bit / limb_bits and off = bit mod limb_bits in
    let v = a.(li) lsr off in
    let v =
      if off > limb_bits - 8 && li + 1 < nlimbs then
        v lor (a.(li + 1) lsl (limb_bits - off))
      else v
    in
    Bytes.unsafe_set b (31 - i) (Char.unsafe_chr (v land 0xff))
  done;
  Bytes.unsafe_to_string b

(* p in the limb representation, for add/sub adjustments. *)
let p_limbs = of_bytes_be (Bignum.to_bytes_be ~len:32 modulus)

let of_bignum (x : Bignum.t) : int array =
  let x = if Bignum.compare x modulus >= 0 then Bignum.rem x modulus else x in
  of_bytes_be (Bignum.to_bytes_be ~len:32 x)

let to_bignum (a : int array) : Bignum.t = Bignum.of_bytes_be (to_bytes_be a)

let copy dst src = Array.blit src 0 dst 0 nlimbs

let set_one dst =
  Array.fill dst 0 nlimbs 0;
  dst.(0) <- 1

let is_zero a =
  let acc = ref 0 in
  for i = 0 to nlimbs - 1 do
    acc := !acc lor a.(i)
  done;
  !acc = 0

let equal a b =
  let acc = ref 0 in
  for i = 0 to nlimbs - 1 do
    acc := !acc lor (a.(i) lxor b.(i))
  done;
  !acc = 0

let ge_p (a : int array) =
  let rec go i =
    if i < 0 then true
    else if a.(i) <> p_limbs.(i) then a.(i) > p_limbs.(i)
    else go (i - 1)
  in
  go (nlimbs - 1)

(* dst <- dst - p, assuming dst >= p. *)
let sub_p_inplace dst =
  let borrow = ref 0 in
  for i = 0 to nlimbs - 1 do
    let v = dst.(i) - p_limbs.(i) - !borrow in
    dst.(i) <- v land limb_mask;
    borrow := (v lsr limb_bits) land 1
  done

let add dst a b =
  let carry = ref 0 in
  for i = 0 to nlimbs - 1 do
    let v = Array.unsafe_get a i + Array.unsafe_get b i + !carry in
    Array.unsafe_set dst i (v land limb_mask);
    carry := v lsr limb_bits
  done;
  if ge_p dst then sub_p_inplace dst

let sub dst a b =
  let borrow = ref 0 in
  for i = 0 to nlimbs - 1 do
    let v = Array.unsafe_get a i - Array.unsafe_get b i - !borrow in
    Array.unsafe_set dst i (v land limb_mask);
    borrow := (v lsr limb_bits) land 1
  done;
  if !borrow <> 0 then begin
    let carry = ref 0 in
    for i = 0 to nlimbs - 1 do
      let v = Array.unsafe_get dst i + Array.unsafe_get p_limbs i + !carry in
      Array.unsafe_set dst i (v land limb_mask);
      carry := v lsr limb_bits
    done
  end

let neg dst a =
  if is_zero a then Array.fill dst 0 nlimbs 0
  else begin
    let borrow = ref 0 in
    for i = 0 to nlimbs - 1 do
      let v = p_limbs.(i) - a.(i) - !borrow in
      dst.(i) <- v land limb_mask;
      borrow := (v lsr limb_bits) land 1
    done
  end

(* 2p in limb form, for the two-subtrahend sweep below. *)
let twop_limbs =
  let t = Array.make nlimbs 0 in
  let cr = ref 0 in
  for i = 0 to nlimbs - 1 do
    let v = (p_limbs.(i) lsl 1) + !cr in
    t.(i) <- v land limb_mask;
    cr := v lsr limb_bits
  done;
  t

(* [add_sub dst_a dst_s a b] is dst_a <- a + b and dst_s <- a - b in a
   single pass over the operands; the point doubling wants both around
   the same (x, delta) pair. *)
let add_sub dst_a dst_s a b =
  let carry = ref 0 and borrow = ref 0 in
  for i = 0 to nlimbs - 1 do
    let ai = Array.unsafe_get a i and bi = Array.unsafe_get b i in
    let v = ai + bi + !carry in
    Array.unsafe_set dst_a i (v land limb_mask);
    carry := v lsr limb_bits;
    let w = ai - bi - !borrow in
    Array.unsafe_set dst_s i (w land limb_mask);
    borrow := (w lsr limb_bits) land 1
  done;
  if ge_p dst_a then sub_p_inplace dst_a;
  if !borrow <> 0 then begin
    let cr = ref 0 in
    for i = 0 to nlimbs - 1 do
      let v = Array.unsafe_get dst_s i + Array.unsafe_get p_limbs i + !cr in
      Array.unsafe_set dst_s i (v land limb_mask);
      cr := v lsr limb_bits
    done
  end

(* [sub2 dst a b c] is dst <- a - b - c in one sweep: a + 2p - b - c lies
   in (0, 3p), so a signed carry pass plus at most two conditional
   subtractions canonicalizes. Replaces back-to-back [sub]s in the point
   formulas. *)
let sub2 dst a b c =
  let cr = ref 0 in
  for i = 0 to nlimbs - 1 do
    let v =
      Array.unsafe_get a i + Array.unsafe_get twop_limbs i
      - Array.unsafe_get b i - Array.unsafe_get c i + !cr
    in
    Array.unsafe_set dst i (v land limb_mask);
    cr := v asr limb_bits
  done;
  if ge_p dst then sub_p_inplace dst;
  if ge_p dst then sub_p_inplace dst

(* Fold the bits of [dst] at and above 2^256 back into the low words via
   the Solinas identity 2^256 = 2^224 - 2^192 - 2^96 + 1 (mod p). Limb 8
   spans bits [232, 261), so the excess is its top 5 bits; the three
   identity terms land at limb offsets 7<<21, 6<<18 and 3<<9. A signed
   carry sweep ([asr] keeps the sign of deficits) restores 29-bit limbs. *)
let fold_once dst =
  let c = dst.(8) lsr 24 in
  if c <> 0 then begin
    dst.(8) <- dst.(8) land 0xffffff;
    dst.(0) <- dst.(0) + c;
    dst.(3) <- dst.(3) - (c lsl 9);
    dst.(6) <- dst.(6) - (c lsl 18);
    dst.(7) <- dst.(7) + (c lsl 21);
    let cr = ref 0 in
    for i = 0 to nlimbs - 1 do
      let v = dst.(i) + !cr in
      dst.(i) <- v land limb_mask;
      cr := v asr limb_bits
    done
  end

(* dst <- a * k for a small constant 0 <= k <= 8 (point formulas use 2, 3,
   4 and 8). Scaled value < 8p < 2^259; one fold brings it below
   2^256 + 2^227, a second below 2^256, and a single conditional
   subtraction restores canonical form — flat cost, no subtraction loop. *)
let mul_small dst a k =
  if k < 0 || k > 8 then invalid_arg "P256_field.mul_small";
  let carry = ref 0 in
  for i = 0 to nlimbs - 1 do
    let v = (a.(i) * k) + !carry in
    dst.(i) <- v land limb_mask;
    carry := v lsr limb_bits
  done;
  fold_once dst;
  fold_once dst;
  if ge_p dst then sub_p_inplace dst

type state = {
  inv_tmp : int array array; (* 9 chain registers for the inversion *)
  pt_tmp : int array array; (* 7 temporaries for the fused point formulas *)
}

let create_state () =
  {
    inv_tmp = Array.init 9 (fun _ -> Array.make nlimbs 0);
    pt_tmp = Array.init 7 (fun _ -> Array.make nlimbs 0);
  }

(* p as 32-bit little-endian words, the shape the reduction's word phase
   works in. *)
let p_words32 = [| 0xffffffff; 0xffffffff; 0xffffffff; 0; 0; 0; 1; 0xffffffff |]

(* Cold finish for the mul/sqr reduction: called when the first fold
   round left a residual carry, or when the top word says the value may
   be at or above p. Hit with probability ~2^-28 per operation, so this
   favors clarity; the loops mirror the unrolled rounds exactly.
   Termination: each fold round shrinks the carry as argued in the
   kernel comment below, so the while loop runs at most twice. *)
let reduce_words_slow dst u0 u1 u2 u3 u4 u5 u6 u7 c0 =
  let u = [| u0; u1; u2; u3; u4; u5; u6; u7 |] in
  let c = ref c0 in
  while !c <> 0 do
    (* c * 2^256 === c * (2^224 - 2^192 - 2^96 + 1) (mod p) *)
    let f = !c in
    u.(0) <- u.(0) + f;
    u.(3) <- u.(3) - f;
    u.(6) <- u.(6) - f;
    u.(7) <- u.(7) + f;
    let cr = ref 0 in
    for i = 0 to 7 do
      let s = u.(i) + !cr in
      u.(i) <- s land 0xffffffff;
      cr := s asr 32
    done;
    c := !cr
  done;
  let ge =
    let rec go i =
      if i < 0 then true
      else if u.(i) <> p_words32.(i) then u.(i) > p_words32.(i)
      else go (i - 1)
    in
    go 7
  in
  if ge then begin
    let bw = ref 0 in
    for i = 0 to 7 do
      let s = u.(i) - p_words32.(i) - !bw in
      u.(i) <- s land 0xffffffff;
      bw := (s lsr 32) land 1
    done
  end;
  for i = 0 to nlimbs - 1 do
    let bit = limb_bits * i in
    let w = bit lsr 5 and off = bit land 31 in
    let lo = u.(w) lsr off in
    let hi = if off > 3 && w < 7 then u.(w + 1) lsl (32 - off) else 0 in
    dst.(i) <- (lo lor hi) land limb_mask
  done

(* Cold wrapper for the split sweep: re-ripple the low chain's carry
   through the high words exactly, then hand off to
   [reduce_words_slow]. *)
let reduce_cold dst u0 u1 u2 u3 u4 u5 u6 u7 cl ch =
  let s = u4 + cl in
  let u4 = s land 0xffffffff in
  let c = s asr 32 in
  let s = u5 + c in
  let u5 = s land 0xffffffff in
  let c = s asr 32 in
  let s = u6 + c in
  let u6 = s land 0xffffffff in
  let c = s asr 32 in
  let s = u7 + c in
  let u7 = s land 0xffffffff in
  let c = s asr 32 in
  reduce_words_slow dst u0 u1 u2 u3 u4 u5 u6 u7 (ch + c)

(* Dedicated multiply/square kernels: fully unrolled product scanning
   over the nine 29-bit limbs (81 native multiplies for [mul], 45 for
   [sqr]) feeding a fully register-resident Solinas reduction -- no
   intermediate product array, no data-dependent loops, every shift a
   constant. Column invariant: at most nine 58-bit limb products plus a
   sub-2^33 carry per column stays under OCaml's 62-bit native-int
   payload.

   Reduction termination: the initial propagation leaves a fold carry
   |c| <= 7. One fused fold-and-propagate round brings the carry into
   {-1, 0, 1}; with |c| = 1 the folded value differs from a canonical
   8-word value by at most 2^224-ish, so one further round can overflow
   or underflow by at most 1, and the round after that lands in
   [0, 2^256) with carry 0. Three rounds therefore always suffice. *)

let mul _st dst a b =
  let a0 = Array.unsafe_get a 0 in
  let a1 = Array.unsafe_get a 1 in
  let a2 = Array.unsafe_get a 2 in
  let a3 = Array.unsafe_get a 3 in
  let a4 = Array.unsafe_get a 4 in
  let a5 = Array.unsafe_get a 5 in
  let a6 = Array.unsafe_get a 6 in
  let a7 = Array.unsafe_get a 7 in
  let a8 = Array.unsafe_get a 8 in
  let b0 = Array.unsafe_get b 0 in
  let b1 = Array.unsafe_get b 1 in
  let b2 = Array.unsafe_get b 2 in
  let b3 = Array.unsafe_get b 3 in
  let b4 = Array.unsafe_get b 4 in
  let b5 = Array.unsafe_get b 5 in
  let b6 = Array.unsafe_get b 6 in
  let b7 = Array.unsafe_get b 7 in
  let b8 = Array.unsafe_get b 8 in
  let s = (a0 * b0) in
  let d0 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a0 * b1) + (a1 * b0) + c in
  let d1 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a0 * b2) + (a1 * b1) + (a2 * b0) + c in
  let d2 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a0 * b3) + (a1 * b2) + (a2 * b1) + (a3 * b0) + c in
  let d3 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a0 * b4) + (a1 * b3) + (a2 * b2) + (a3 * b1) + (a4 * b0) + c in
  let d4 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a0 * b5) + (a1 * b4) + (a2 * b3) + (a3 * b2) + (a4 * b1) + (a5 * b0) + c in
  let d5 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a0 * b6) + (a1 * b5) + (a2 * b4) + (a3 * b3) + (a4 * b2) + (a5 * b1) + (a6 * b0) + c in
  let d6 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a0 * b7) + (a1 * b6) + (a2 * b5) + (a3 * b4) + (a4 * b3) + (a5 * b2) + (a6 * b1) + (a7 * b0) + c in
  let d7 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a0 * b8) + (a1 * b7) + (a2 * b6) + (a3 * b5) + (a4 * b4) + (a5 * b3) + (a6 * b2) + (a7 * b1) + (a8 * b0) + c in
  let d8 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a1 * b8) + (a2 * b7) + (a3 * b6) + (a4 * b5) + (a5 * b4) + (a6 * b3) + (a7 * b2) + (a8 * b1) + c in
  let d9 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a2 * b8) + (a3 * b7) + (a4 * b6) + (a5 * b5) + (a6 * b4) + (a7 * b3) + (a8 * b2) + c in
  let d10 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a3 * b8) + (a4 * b7) + (a5 * b6) + (a6 * b5) + (a7 * b4) + (a8 * b3) + c in
  let d11 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a4 * b8) + (a5 * b7) + (a6 * b6) + (a7 * b5) + (a8 * b4) + c in
  let d12 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a5 * b8) + (a6 * b7) + (a7 * b6) + (a8 * b5) + c in
  let d13 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a6 * b8) + (a7 * b7) + (a8 * b6) + c in
  let d14 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a7 * b8) + (a8 * b7) + c in
  let d15 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a8 * b8) + c in
  let d16 = s land limb_mask in
  let d17 = s lsr limb_bits in
  (* Regroup the 29-bit product limbs into 32-bit words a0..a15. *)
  let q0 = (d0 lor (d1 lsl 29)) land 0xffffffff in
  let q1 = ((d1 lsr 3) lor (d2 lsl 26)) land 0xffffffff in
  let q2 = ((d2 lsr 6) lor (d3 lsl 23)) land 0xffffffff in
  let q3 = ((d3 lsr 9) lor (d4 lsl 20)) land 0xffffffff in
  let q4 = ((d4 lsr 12) lor (d5 lsl 17)) land 0xffffffff in
  let q5 = ((d5 lsr 15) lor (d6 lsl 14)) land 0xffffffff in
  let q6 = ((d6 lsr 18) lor (d7 lsl 11)) land 0xffffffff in
  let q7 = ((d7 lsr 21) lor (d8 lsl 8)) land 0xffffffff in
  let q8 = ((d8 lsr 24) lor (d9 lsl 5)) land 0xffffffff in
  let q9 = ((d9 lsr 27) lor (d10 lsl 2) lor (d11 lsl 31)) land 0xffffffff in
  let q10 = ((d11 lsr 1) lor (d12 lsl 28)) land 0xffffffff in
  let q11 = ((d12 lsr 4) lor (d13 lsl 25)) land 0xffffffff in
  let q12 = ((d13 lsr 7) lor (d14 lsl 22)) land 0xffffffff in
  let q13 = ((d14 lsr 10) lor (d15 lsl 19)) land 0xffffffff in
  let q14 = ((d15 lsr 13) lor (d16 lsl 16)) land 0xffffffff in
  let q15 = ((d16 lsr 16) lor (d17 lsl 13)) land 0xffffffff in
  (* Signed Solinas column sums (FIPS 186-4 D.2.3). *)
  let t0 = q0 + q8 + q9 - q11 - q12 - q13 - q14 in
  let t1 = q1 + q9 + q10 - q12 - q13 - q14 - q15 in
  let t2 = q2 + q10 + q11 - q13 - q14 - q15 in
  let t3 = q3 + (2 * (q11 + q12)) + q13 - q15 - q8 - q9 in
  let t4 = q4 + (2 * (q12 + q13)) + q14 - q9 - q10 in
  let t5 = q5 + (2 * (q13 + q14)) + q15 - q10 - q11 in
  let t6 = q6 + q13 + (3 * q14) + (2 * q15) - q8 - q9 in
  let t7 = q7 + q8 + (3 * q15) - q10 - q11 - q12 - q13 in
  (* Initial signed carry propagation in base 2^32, split into two
     independent four-word chains so they retire in parallel. The low
     chain's carry [cl] joins at word 4 below; it almost never ripples
     further, and the fast-path range check catches the case where it
     would. *)
  let s = t0 in
  let u0 = s land 0xffffffff in
  let c = s asr 32 in
  let s = t1 + c in
  let u1 = s land 0xffffffff in
  let c = s asr 32 in
  let s = t2 + c in
  let u2 = s land 0xffffffff in
  let c = s asr 32 in
  let s = t3 + c in
  let u3 = s land 0xffffffff in
  let cl = s asr 32 in
  let s = t4 in
  let u4 = s land 0xffffffff in
  let c = s asr 32 in
  let s = t5 + c in
  let u5 = s land 0xffffffff in
  let c = s asr 32 in
  let s = t6 + c in
  let u6 = s land 0xffffffff in
  let c = s asr 32 in
  let s = t7 + c in
  let u7 = s land 0xffffffff in
  let c = s asr 32 in
  (* Fold the residual carry c * 2^256 === c * (2^224 - 2^192 - 2^96 + 1)
     (mod p) directly into the four affected words. |c| <= 7, so an
     adjusted word leaves [0, 2^32) with probability ~2^-29 per word; the
     fast path checks all four at once (a negative word or one >= 2^32
     both light up bits above 31) plus the below-p witness
     (v7 < 2^32 - 1), and everything else takes the cold out-of-line
     [reduce_words_slow], which loops the fold until the carry settles.
     No second full propagation sweep: the hot path's carry chain ends
     here. 32-bit words -> 29-bit limbs, all shifts constant. *)
  let v0 = u0 + c in
  let v3 = u3 - c in
  let v4 = u4 + cl in
  let v6 = u6 - c in
  let v7 = u7 + c in
  if (v0 lor v3 lor v4 lor v6 lor v7) lsr 32 = 0 && v7 <> 0xffffffff then begin
    Array.unsafe_set dst 0 (v0 land limb_mask);
    Array.unsafe_set dst 1 (((v0 lsr 29) lor (u1 lsl 3)) land limb_mask);
    Array.unsafe_set dst 2 (((u1 lsr 26) lor (u2 lsl 6)) land limb_mask);
    Array.unsafe_set dst 3 (((u2 lsr 23) lor (v3 lsl 9)) land limb_mask);
    Array.unsafe_set dst 4 (((v3 lsr 20) lor (v4 lsl 12)) land limb_mask);
    Array.unsafe_set dst 5 (((v4 lsr 17) lor (u5 lsl 15)) land limb_mask);
    Array.unsafe_set dst 6 (((u5 lsr 14) lor (v6 lsl 18)) land limb_mask);
    Array.unsafe_set dst 7 (((v6 lsr 11) lor (v7 lsl 21)) land limb_mask);
    Array.unsafe_set dst 8 ((v7 lsr 8) land limb_mask)
  end
  else reduce_cold dst u0 u1 u2 u3 u4 u5 u6 u7 cl c

let sqr _st dst a =
  let a0 = Array.unsafe_get a 0 in
  let a1 = Array.unsafe_get a 1 in
  let a2 = Array.unsafe_get a 2 in
  let a3 = Array.unsafe_get a 3 in
  let a4 = Array.unsafe_get a 4 in
  let a5 = Array.unsafe_get a 5 in
  let a6 = Array.unsafe_get a 6 in
  let a7 = Array.unsafe_get a 7 in
  let a8 = Array.unsafe_get a 8 in
  let s = (a0 * a0) in
  let d0 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a0 * a1)) lsl 1) + c in
  let d1 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a0 * a2)) lsl 1) + (a1 * a1) + c in
  let d2 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a0 * a3) + (a1 * a2)) lsl 1) + c in
  let d3 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a0 * a4) + (a1 * a3)) lsl 1) + (a2 * a2) + c in
  let d4 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a0 * a5) + (a1 * a4) + (a2 * a3)) lsl 1) + c in
  let d5 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a0 * a6) + (a1 * a5) + (a2 * a4)) lsl 1) + (a3 * a3) + c in
  let d6 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a0 * a7) + (a1 * a6) + (a2 * a5) + (a3 * a4)) lsl 1) + c in
  let d7 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a0 * a8) + (a1 * a7) + (a2 * a6) + (a3 * a5)) lsl 1) + (a4 * a4) + c in
  let d8 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a1 * a8) + (a2 * a7) + (a3 * a6) + (a4 * a5)) lsl 1) + c in
  let d9 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a2 * a8) + (a3 * a7) + (a4 * a6)) lsl 1) + (a5 * a5) + c in
  let d10 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a3 * a8) + (a4 * a7) + (a5 * a6)) lsl 1) + c in
  let d11 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a4 * a8) + (a5 * a7)) lsl 1) + (a6 * a6) + c in
  let d12 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a5 * a8) + (a6 * a7)) lsl 1) + c in
  let d13 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a6 * a8)) lsl 1) + (a7 * a7) + c in
  let d14 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (((a7 * a8)) lsl 1) + c in
  let d15 = s land limb_mask in
  let c = s lsr limb_bits in
  let s = (a8 * a8) + c in
  let d16 = s land limb_mask in
  let d17 = s lsr limb_bits in
  (* Regroup the 29-bit product limbs into 32-bit words a0..a15. *)
  let q0 = (d0 lor (d1 lsl 29)) land 0xffffffff in
  let q1 = ((d1 lsr 3) lor (d2 lsl 26)) land 0xffffffff in
  let q2 = ((d2 lsr 6) lor (d3 lsl 23)) land 0xffffffff in
  let q3 = ((d3 lsr 9) lor (d4 lsl 20)) land 0xffffffff in
  let q4 = ((d4 lsr 12) lor (d5 lsl 17)) land 0xffffffff in
  let q5 = ((d5 lsr 15) lor (d6 lsl 14)) land 0xffffffff in
  let q6 = ((d6 lsr 18) lor (d7 lsl 11)) land 0xffffffff in
  let q7 = ((d7 lsr 21) lor (d8 lsl 8)) land 0xffffffff in
  let q8 = ((d8 lsr 24) lor (d9 lsl 5)) land 0xffffffff in
  let q9 = ((d9 lsr 27) lor (d10 lsl 2) lor (d11 lsl 31)) land 0xffffffff in
  let q10 = ((d11 lsr 1) lor (d12 lsl 28)) land 0xffffffff in
  let q11 = ((d12 lsr 4) lor (d13 lsl 25)) land 0xffffffff in
  let q12 = ((d13 lsr 7) lor (d14 lsl 22)) land 0xffffffff in
  let q13 = ((d14 lsr 10) lor (d15 lsl 19)) land 0xffffffff in
  let q14 = ((d15 lsr 13) lor (d16 lsl 16)) land 0xffffffff in
  let q15 = ((d16 lsr 16) lor (d17 lsl 13)) land 0xffffffff in
  (* Signed Solinas column sums (FIPS 186-4 D.2.3). *)
  let t0 = q0 + q8 + q9 - q11 - q12 - q13 - q14 in
  let t1 = q1 + q9 + q10 - q12 - q13 - q14 - q15 in
  let t2 = q2 + q10 + q11 - q13 - q14 - q15 in
  let t3 = q3 + (2 * (q11 + q12)) + q13 - q15 - q8 - q9 in
  let t4 = q4 + (2 * (q12 + q13)) + q14 - q9 - q10 in
  let t5 = q5 + (2 * (q13 + q14)) + q15 - q10 - q11 in
  let t6 = q6 + q13 + (3 * q14) + (2 * q15) - q8 - q9 in
  let t7 = q7 + q8 + (3 * q15) - q10 - q11 - q12 - q13 in
  (* Initial signed carry propagation in base 2^32, split into two
     independent four-word chains so they retire in parallel. The low
     chain's carry [cl] joins at word 4 below; it almost never ripples
     further, and the fast-path range check catches the case where it
     would. *)
  let s = t0 in
  let u0 = s land 0xffffffff in
  let c = s asr 32 in
  let s = t1 + c in
  let u1 = s land 0xffffffff in
  let c = s asr 32 in
  let s = t2 + c in
  let u2 = s land 0xffffffff in
  let c = s asr 32 in
  let s = t3 + c in
  let u3 = s land 0xffffffff in
  let cl = s asr 32 in
  let s = t4 in
  let u4 = s land 0xffffffff in
  let c = s asr 32 in
  let s = t5 + c in
  let u5 = s land 0xffffffff in
  let c = s asr 32 in
  let s = t6 + c in
  let u6 = s land 0xffffffff in
  let c = s asr 32 in
  let s = t7 + c in
  let u7 = s land 0xffffffff in
  let c = s asr 32 in
  (* Fold the residual carry c * 2^256 === c * (2^224 - 2^192 - 2^96 + 1)
     (mod p) directly into the four affected words. |c| <= 7, so an
     adjusted word leaves [0, 2^32) with probability ~2^-29 per word; the
     fast path checks all four at once (a negative word or one >= 2^32
     both light up bits above 31) plus the below-p witness
     (v7 < 2^32 - 1), and everything else takes the cold out-of-line
     [reduce_words_slow], which loops the fold until the carry settles.
     No second full propagation sweep: the hot path's carry chain ends
     here. 32-bit words -> 29-bit limbs, all shifts constant. *)
  let v0 = u0 + c in
  let v3 = u3 - c in
  let v4 = u4 + cl in
  let v6 = u6 - c in
  let v7 = u7 + c in
  if (v0 lor v3 lor v4 lor v6 lor v7) lsr 32 = 0 && v7 <> 0xffffffff then begin
    Array.unsafe_set dst 0 (v0 land limb_mask);
    Array.unsafe_set dst 1 (((v0 lsr 29) lor (u1 lsl 3)) land limb_mask);
    Array.unsafe_set dst 2 (((u1 lsr 26) lor (u2 lsl 6)) land limb_mask);
    Array.unsafe_set dst 3 (((u2 lsr 23) lor (v3 lsl 9)) land limb_mask);
    Array.unsafe_set dst 4 (((v3 lsr 20) lor (v4 lsl 12)) land limb_mask);
    Array.unsafe_set dst 5 (((v4 lsr 17) lor (u5 lsl 15)) land limb_mask);
    Array.unsafe_set dst 6 (((u5 lsr 14) lor (v6 lsl 18)) land limb_mask);
    Array.unsafe_set dst 7 (((v6 lsr 11) lor (v7 lsl 21)) land limb_mask);
    Array.unsafe_set dst 8 ((v7 lsr 8) land limb_mask)
  end
  else reduce_cold dst u0 u1 u2 u3 u4 u5 u6 u7 cl c

(* Fermat inversion via a fixed addition chain for p - 2. With the
   repeated-pattern decomposition of p - 2 =
   ffffffff00000001_0000000000000000_00000000ffffffff_fffffffffffffffd
   the chain costs ~268 squarings + 14 multiplies, an order of magnitude
   cheaper than a generic sliding-window exponentiation. *)
let inv st dst a =
  if is_zero a then invalid_arg "P256_field.inv: zero";
  let t = st.inv_tmp in
  let x1 = t.(0) in
  copy x1 a;
  (* [dst] may alias [a]; working from a private copy keeps the chain
     registers consistent either way. *)
  let x2 = t.(1)
  and x4 = t.(2)
  and x8 = t.(3)
  and x16 = t.(4)
  and x32 = t.(5)
  and x24 = t.(6)
  and x28 = t.(7)
  and x30 = t.(8) in
  let acc = dst in
  let sqr_n x n =
    for _ = 1 to n do
      sqr st x x
    done
  in
  (* x{k} holds a^(2^k - 1). *)
  sqr st x2 x1;
  mul st x2 x2 x1;
  copy x4 x2;
  sqr_n x4 2;
  mul st x4 x4 x2;
  copy x8 x4;
  sqr_n x8 4;
  mul st x8 x8 x4;
  copy x16 x8;
  sqr_n x16 8;
  mul st x16 x16 x8;
  copy x32 x16;
  sqr_n x32 16;
  mul st x32 x32 x16;
  copy x24 x16;
  sqr_n x24 8;
  mul st x24 x24 x8;
  copy x28 x24;
  sqr_n x28 4;
  mul st x28 x28 x4;
  copy x30 x28;
  sqr_n x30 2;
  mul st x30 x30 x2;
  (* Assemble the exponent left to right: ffffffff || 00000001 ||
     0^96 || ffffffff * 2 || fffffffd-tail. *)
  copy acc x32;
  sqr_n acc 32;
  mul st acc acc x1;
  sqr_n acc 96;
  sqr_n acc 32;
  mul st acc acc x32;
  sqr_n acc 32;
  mul st acc acc x32;
  sqr_n acc 30;
  mul st acc acc x30;
  sqr_n acc 2;
  mul st acc acc x1

(* --- Fused Jacobian point formulas ----------------------------------------

   The EC ladder's hot loop spends its life in these two routines, so the
   P-256 backend provides them whole: one direct call per point
   operation instead of a dozen dispatched field-op calls, with the
   workspace temporaries held in [state]. The formulas mirror the
   backend-generic ones in [Ec] exactly (dbl-2001-b for a = -3,
   add-1986-cc), so either path computes identical points. *)

(* (x, y, z) <- 2 * (x, y, z), in place, assuming curve a = -3 and
   y <> 0 (the caller handles infinity and the 2-torsion case):
     delta = z^2, gamma = y^2, beta = x * gamma,
     alpha = 3 (x - delta)(x + delta),
     x' = alpha^2 - 8 beta, z' = (y + z)^2 - gamma - delta,
     y' = alpha (4 beta - x') - 8 gamma^2. *)
let point_dbl st x y z =
  let t = st.pt_tmp in
  let t1 = t.(0) and t2 = t.(1) and t3 = t.(2) and t4 = t.(3) and t5 = t.(4) in
  sqr st t1 z (* delta *);
  sqr st t2 y (* gamma *);
  mul st t3 x t2 (* beta *);
  add_sub t5 t4 x t1 (* t5 = x + delta, t4 = x - delta *);
  mul st t4 t4 t5;
  mul_small t4 t4 3 (* alpha *);
  add t5 y z;
  sqr st t5 t5;
  sub2 z t5 t2 t1 (* z' = (y+z)^2 - gamma - delta; y, z consumed *);
  sqr st t1 t4 (* alpha^2 *);
  mul_small t3 t3 4 (* 4 beta; plain beta is dead *);
  sub2 x t1 t3 t3 (* x' = alpha^2 - 8 beta *);
  sub t3 t3 x (* 4 beta - x' *);
  mul st t3 t4 t3;
  sqr st t1 t2;
  mul_small t1 t1 8 (* 8 gamma^2 *);
  sub y t3 t1 (* y' *)

(* (px, py, pz) <- (px, py, pz) + (qx, qy, qz), in place; q is only
   read. Returns 0 on success, 1 when the points are equal (caller
   doubles), 2 when they are opposite (caller sets infinity). *)
let point_add st px py pz qx qy qz =
  let t = st.pt_tmp in
  let t1 = t.(0) and t2 = t.(1) and t3 = t.(2) and t4 = t.(3) in
  let t5 = t.(4) and t6 = t.(5) and t7 = t.(6) in
  sqr st t1 pz (* z1^2 *);
  sqr st t2 qz (* z2^2 *);
  mul st t3 px t2 (* u1 *);
  mul st t4 qx t1 (* u2 *);
  mul st t5 t2 qz;
  mul st t5 py t5 (* s1 = y1 z2^3 *);
  mul st t6 t1 pz;
  mul st t6 qy t6 (* s2 = y2 z1^3 *);
  if equal t3 t4 then begin if equal t5 t6 then 1 else 2 end
  else begin
    sub t4 t4 t3 (* h = u2 - u1 *);
    sub t6 t6 t5 (* r = s2 - s1 *);
    mul st t7 pz qz;
    mul st pz t7 t4 (* z3 = h z1 z2 *);
    sqr st t1 t4 (* h^2 *);
    mul st t2 t1 t4 (* h^3 *);
    mul st t7 t3 t1 (* u1 h^2 *);
    sqr st t1 t6;
    mul_small t4 t7 2;
    sub2 px t1 t2 t4 (* x3 = r^2 - h^3 - 2 u1 h^2 *);
    sub t1 t7 px;
    mul st t3 t6 t1 (* r (u1 h^2 - x3) *);
    mul st t1 t5 t2 (* s1 h^3 *);
    sub py t3 t1;
    0
  end

(* (px, py, pz) <- (px, py, pz) + (ax, ay) with the second operand
   affine (Z = 1). Same return codes as [point_add]. *)
let point_add_affine st px py pz ax ay =
  let t = st.pt_tmp in
  let t1 = t.(0) and t2 = t.(1) and t3 = t.(2) and t4 = t.(3) in
  let t5 = t.(4) and t6 = t.(5) and t7 = t.(6) in
  sqr st t1 pz (* z1^2 *);
  mul st t2 ax t1 (* u2 *);
  mul st t3 t1 pz;
  mul st t3 ay t3 (* s2 = ay z1^3 *);
  if equal px t2 then begin if equal py t3 then 1 else 2 end
  else begin
    sub t2 t2 px (* h *);
    sub t3 t3 py (* r *);
    mul st pz pz t2 (* z3 = z1 h *);
    sqr st t4 t2 (* h^2 *);
    mul st t5 t4 t2 (* h^3 *);
    mul st t6 px t4 (* v = x1 h^2 *);
    sqr st t4 t3;
    mul_small t7 t6 2;
    sub2 px t4 t5 t7 (* x3 = r^2 - h^3 - 2v *);
    sub t4 t6 px;
    mul st t6 t3 t4 (* r (v - x3) *);
    mul st t4 py t5 (* y1 h^3 *);
    sub py t6 t4;
    0
  end
