(* HMAC-DRBG (NIST SP 800-90A) over HMAC-SHA256.

   This is the only randomness source in the project: crypto keys,
   simulated-operator behaviour and workload generation all draw from
   seeded instances, so every experiment is reproducible bit-for-bit.
   [fork] derives an independent child generator from a label, which lets
   each simulated entity own a private stream that is insensitive to the
   draw order of its siblings. *)

type t = { mutable k : string; mutable v : string }

let update t provided =
  t.k <- Hmac.sha256 ~key:t.k (t.v ^ "\x00" ^ provided);
  t.v <- Hmac.sha256 ~key:t.k t.v;
  if provided <> "" then begin
    t.k <- Hmac.sha256 ~key:t.k (t.v ^ "\x01" ^ provided);
    t.v <- Hmac.sha256 ~key:t.k t.v
  end

let create ~seed =
  let t = { k = String.make 32 '\x00'; v = String.make 32 '\x01' } in
  update t seed;
  t

let of_int_seed n = create ~seed:(Printf.sprintf "seed:%d" n)

let reseed t entropy = update t entropy

(* Core draw: one HMAC per 32-byte block, written straight into the
   caller's buffer. [generate_into t buf ~pos ~len] advances (K, V)
   exactly as a [generate t len] would, so the two are interchangeable
   mid-stream; hot paths use this to fill preallocated buffers without
   the Buffer/copy churn of the string variant. *)
let generate_into t (buf : Bytes.t) ~pos ~len =
  if len < 0 then invalid_arg "Drbg.generate_into: negative length";
  if pos < 0 || pos > Bytes.length buf - len then
    invalid_arg "Drbg.generate_into: range out of bounds";
  let off = ref pos in
  let remaining = ref len in
  while !remaining > 0 do
    t.v <- Hmac.sha256 ~key:t.k t.v;
    let chunk = if !remaining < 32 then !remaining else 32 in
    Bytes.blit_string t.v 0 buf !off chunk;
    off := !off + chunk;
    remaining := !remaining - chunk
  done;
  update t ""

let generate t n =
  if n < 0 then invalid_arg "Drbg.generate: negative length";
  let buf = Bytes.create n in
  generate_into t buf ~pos:0 ~len:n;
  Bytes.unsafe_to_string buf

let fork t ~label = create ~seed:(generate t 32 ^ "|" ^ label)

(* The full generator state is just (K, V); exposing it lets campaign
   checkpoints snapshot and restore the exact position in a stream. *)
let state t = (t.k, t.v)

let restore ~state:(k, v) =
  if String.length k <> 32 || String.length v <> 32 then
    invalid_arg "Drbg.restore: K and V must be 32 bytes";
  { k; v }

(* --- Convenience draws --------------------------------------------------- *)

let byte t =
  (* One block draw; stream-equivalent to [generate t 1] but with only
     the unavoidable HMAC allocations. *)
  t.v <- Hmac.sha256 ~key:t.k t.v;
  let b = Char.code t.v.[0] in
  update t "";
  b

let bits62 t =
  t.v <- Hmac.sha256 ~key:t.k t.v;
  let v = t.v in
  let acc = ref 0 in
  for i = 0 to 7 do
    acc := (!acc lsl 8) lor Char.code (String.unsafe_get v i)
  done;
  update t "";
  !acc land max_int

let int_below t n =
  if n <= 0 then invalid_arg "Drbg.int_below: bound must be positive";
  (* Rejection sampling for an unbiased draw. *)
  let limit = max_int - (max_int mod n) in
  let rec go () =
    let v = bits62 t in
    if v < limit then v mod n else go ()
  in
  go ()

let int_range t lo hi =
  if hi < lo then invalid_arg "Drbg.int_range: empty range";
  lo + int_below t (hi - lo + 1)

let float01 t = float_of_int (bits62 t) /. float_of_int max_int

let bool t ~p = float01 t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Drbg.pick: empty array";
  arr.(int_below t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Drbg.pick_list: empty list"
  | _ -> List.nth l (int_below t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Draw from a discrete distribution given as (weight, value) pairs. *)
let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. choices in
  if total <= 0. then invalid_arg "Drbg.weighted: non-positive total weight";
  let target = float01 t *. total in
  let rec go acc = function
    | [] -> invalid_arg "Drbg.weighted: empty"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if acc +. w >= target then v else go (acc +. w) rest
  in
  go 0. choices

(* Exponential draw with the given mean (for Poisson-ish event spacing). *)
let exponential t ~mean =
  let u = float01 t in
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let bignum_below t (n : Bignum.t) =
  if Bignum.is_zero n then invalid_arg "Drbg.bignum_below: bound must be positive";
  let bits = Bignum.num_bits n in
  let bytes = (bits + 7) / 8 in
  (* Mask the top byte down to [bits] so the acceptance rate of the
     rejection sampling is at least 1/2. *)
  let top_mask = 0xff lsr (8 - (((bits - 1) mod 8) + 1)) in
  let raw = Bytes.create bytes in
  let rec go () =
    generate_into t raw ~pos:0 ~len:bytes;
    Bytes.set raw 0 (Char.chr (Char.code (Bytes.get raw 0) land top_mask));
    let v = Bignum.of_bytes_be (Bytes.unsafe_to_string raw) in
    if Bignum.compare v n < 0 then v else go ()
  in
  go ()

(* A value in [1, n-1], the usual range for DH exponents. *)
let bignum_in_group t (n : Bignum.t) =
  let v = bignum_below t (Bignum.sub n Bignum.one) in
  Bignum.add v Bignum.one
