(* X25519 (RFC 7748): Diffie-Hellman over Curve25519 via the Montgomery
   ladder. Verified against the RFC 7748 test vectors in the test suite. *)

module F = Bignum.Field

let p = Bignum.sub_int (Bignum.shift_left Bignum.one 255) 19
let fctx = F.create p
let a24 = F.of_bignum fctx (Bignum.of_int 121665)

let key_len = 32

let reverse s = String.init (String.length s) (fun i -> s.[String.length s - 1 - i])

let decode_u_coordinate s =
  if String.length s <> key_len then invalid_arg "X25519: u-coordinate must be 32 bytes";
  (* Little-endian; the top bit is masked per RFC 7748. *)
  let b = Bytes.of_string s in
  Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) land 0x7f));
  Bignum.rem (Bignum.of_bytes_be (reverse (Bytes.to_string b))) p

let encode_u_coordinate v = reverse (Bignum.to_bytes_be ~len:key_len v)

let clamp_scalar s =
  if String.length s <> key_len then invalid_arg "X25519: scalar must be 32 bytes";
  let b = Bytes.of_string s in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land 248));
  Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) land 127 lor 64));
  Bignum.of_bytes_be (reverse (Bytes.to_string b))

let ladder k u =
  let x1 = F.of_bignum fctx u in
  let one = F.one fctx and zero = F.zero fctx in
  let x2 = ref one and z2 = ref zero and x3 = ref x1 and z3 = ref one in
  let swap = ref false in
  let cswap cond a b =
    if cond then begin
      let t = !a in
      a := !b;
      b := t
    end
  in
  for t = 254 downto 0 do
    let kt = Bignum.test_bit k t in
    let do_swap = !swap <> kt in
    swap := kt;
    cswap do_swap x2 x3;
    cswap do_swap z2 z3;
    let a = F.add fctx !x2 !z2 in
    let aa = F.sqr fctx a in
    let b = F.sub fctx !x2 !z2 in
    let bb = F.sqr fctx b in
    let e = F.sub fctx aa bb in
    let c = F.add fctx !x3 !z3 in
    let d = F.sub fctx !x3 !z3 in
    let da = F.mul fctx d a in
    let cb = F.mul fctx c b in
    x3 := F.sqr fctx (F.add fctx da cb);
    z3 := F.mul fctx x1 (F.sqr fctx (F.sub fctx da cb));
    x2 := F.mul fctx aa bb;
    z2 := F.mul fctx e (F.add fctx aa (F.mul fctx a24 e))
  done;
  cswap !swap x2 x3;
  cswap !swap z2 z3;
  if F.is_zero !z2 then Bignum.zero
  else F.to_bignum fctx (F.mul fctx !x2 (F.inv fctx !z2))

let scalar_mult ~scalar ~u =
  Obs.Kernel.(bump x25519_mult);
  let k = clamp_scalar scalar in
  let uv = decode_u_coordinate u in
  encode_u_coordinate (ladder k uv)

let base_point = encode_u_coordinate (Bignum.of_int 9)

let public_of_private scalar = scalar_mult ~scalar ~u:base_point

type keypair = { priv : string; pub : string }

let gen_keypair rng =
  let priv = Drbg.generate rng key_len in
  { priv; pub = public_of_private priv }

let public_bytes kp = kp.pub

let shared_secret kp ~peer_pub =
  let z = scalar_mult ~scalar:kp.priv ~u:peer_pub in
  (* RFC 7748: reject the all-zero output (low-order peer point). *)
  if String.for_all (fun c -> c = '\000') z then Error "x25519: low-order peer point"
  else Ok z
