(** Specialized arithmetic for the NIST P-256 prime field
    p = 2{^256} - 2{^224} + 2{^192} + 2{^96} - 1.

    Elements are little-endian arrays of nine 29-bit limbs, canonical in
    [\[0, p)]. All operations write into caller-provided destination
    arrays; [mul]/[sqr]/[inv] take an explicit {!state} scratch so hot
    loops allocate nothing per operation. Destinations may alias
    operands. {!Ec} selects this backend automatically when a curve's
    field prime equals {!modulus}; the generic [Bignum.Field] remains
    the default for every other curve and {!Ec.Reference} stays the
    correctness oracle. *)

val words : int
(** Number of limbs in an element (9). *)

val modulus : Bignum.t
(** The P-256 prime. *)

type state
(** Per-caller scratch buffers for [mul]/[sqr]/[inv]. Cheap to create;
    must not be shared across domains. *)

val create_state : unit -> state

val zero : unit -> int array
(** A fresh element initialized to 0. *)

val of_bignum : Bignum.t -> int array
(** Values outside [\[0, p)] are reduced. *)

val to_bignum : int array -> Bignum.t
val of_bytes_be : string -> int array
val to_bytes_be : int array -> string
val copy : int array -> int array -> unit
val set_one : int array -> unit
val is_zero : int array -> bool
val equal : int array -> int array -> bool
val add : int array -> int array -> int array -> unit
val sub : int array -> int array -> int array -> unit
val neg : int array -> int array -> unit

val mul_small : int array -> int array -> int -> unit
(** [mul_small dst a k] for [0 <= k <= 8]. *)

val mul : state -> int array -> int array -> int array -> unit
val sqr : state -> int array -> int array -> unit

val inv : state -> int array -> int array -> unit
(** Fermat inversion via a fixed addition chain for p-2. Raises
    [Invalid_argument] on zero. *)

(** {2 Fused Jacobian point kernels}

    In-place point formulas over (X, Y, Z) coordinate triples, fusing the
    whole dbl-2001-b / add-1986-cc sequences into single calls so the
    scalar-multiplication ladder in {!Ec} pays no per-field-op dispatch.
    Callers handle the point at infinity and [y = 0] before calling
    [point_dbl]; the add kernels report degenerate cases via their return
    code and leave the point untouched in those cases. *)

val point_dbl : state -> int array -> int array -> int array -> unit
(** [point_dbl st x y z] doubles in place with the a = -3 formulas.
    Precondition: the point is not at infinity and [y <> 0]. *)

val point_add :
  state ->
  int array -> int array -> int array ->
  int array -> int array -> int array ->
  int
(** [point_add st px py pz qx qy qz] sets P <- P + Q and returns [0];
    returns [1] (P untouched) when P = Q — caller must double — and [2]
    (P untouched) when P = -Q — caller must set infinity. Neither point
    may be at infinity and the buffers must not alias. *)

val point_add_affine :
  state ->
  int array -> int array -> int array ->
  int array -> int array ->
  int
(** [point_add_affine st px py pz ax ay] is {!point_add} with the second
    operand affine (Z = 1); same return codes. *)
