(* ECDSA over any {!Ec} curve, hashing with SHA-256. This is the signature
   scheme behind the reproduction's certificate authority and the server's
   ServerKeyExchange signatures: real public-key authentication at
   simulation-tractable cost when instantiated over a small curve. *)

module B = Bignum

type keypair = { curve : Ec.curve; priv : B.t; pub : Ec.point }
type signature = { r : B.t; s : B.t }

let gen_keypair curve rng =
  let n = Ec.curve_order curve in
  let priv = Drbg.bignum_in_group rng n in
  { curve; priv; pub = Ec.scalar_mult_base curve priv }

let public_key kp = kp.pub
let curve kp = kp.curve

(* Truncate the hash to the bit length of the group order (FIPS 186-4). *)
let hash_to_z curve msg =
  let n = Ec.curve_order curve in
  let h = B.of_bytes_be (Sha256.digest msg) in
  let excess = 256 - B.num_bits n in
  if excess > 0 then B.shift_right h excess else h

let sign kp rng msg =
  let n = Ec.curve_order kp.curve in
  let z = hash_to_z kp.curve msg in
  let rec attempt () =
    let k = Drbg.bignum_in_group rng n in
    match Ec.scalar_mult_base kp.curve k with
    | Ec.Inf -> attempt ()
    | Ec.Affine (x, _) ->
        let r = B.rem x n in
        if B.is_zero r then attempt ()
        else
          let kinv = Ec.mod_order_inverse kp.curve k in
          let s = B.rem (B.mul kinv (B.add z (B.rem (B.mul r kp.priv) n))) n in
          if B.is_zero s then attempt () else { r; s }
  in
  attempt ()

let verify ~curve ~pub ~msg { r; s } =
  let n = Ec.curve_order curve in
  let in_range v = B.compare v B.zero > 0 && B.compare v n < 0 in
  in_range r && in_range s
  && Ec.on_curve curve pub
  &&
  let z = hash_to_z curve msg in
  let sinv = Ec.mod_order_inverse curve s in
  let u1 = B.rem (B.mul z sinv) n in
  let u2 = B.rem (B.mul r sinv) n in
  match Ec.scalar_mult_base_add curve u1 u2 pub with
  | Ec.Inf -> false
  | Ec.Affine (x, _) -> B.equal (B.rem x n) r

(* Static ECDH with the signing key: the certificate's long-term key used
   directly for key agreement, as in the TLS ECDH_ECDSA suites. This is the
   non-forward-secret exchange of the paper — the long-term key decrypts
   everything, forever. *)
let ecdh kp ~peer_pub =
  match peer_pub with
  | Ec.Inf -> Error "ecdh: peer public is infinity"
  | Ec.Affine _ when not (Ec.on_curve kp.curve peer_pub) -> Error "ecdh: peer point not on curve"
  | Ec.Affine _ -> (
      match Ec.scalar_mult kp.curve kp.priv peer_pub with
      | Ec.Inf -> Error "ecdh: degenerate shared point"
      | Ec.Affine (x, _) ->
          Ok (B.to_bytes_be ~len:((B.num_bits (Ec.curve_p kp.curve) + 7) / 8) x))

(* Fixed-width (r, s) concatenation; width follows the group order. *)
let order_len curve = (B.num_bits (Ec.curve_order curve) + 7) / 8

let signature_bytes curve { r; s } =
  let l = order_len curve in
  B.to_bytes_be ~len:l r ^ B.to_bytes_be ~len:l s

let signature_of_bytes curve bytes =
  let l = order_len curve in
  if String.length bytes <> 2 * l then Error "ecdsa: bad signature length"
  else
    Ok { r = B.of_bytes_be (String.sub bytes 0 l); s = B.of_bytes_be (String.sub bytes l l) }
