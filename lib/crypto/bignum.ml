(* Arbitrary-precision unsigned integers ("naturals") built from scratch:
   the container has no zarith, and the (EC)DHE substrate needs modular
   exponentiation over 64..2048-bit moduli.

   Representation: little-endian [int array] of 26-bit limbs with no leading
   zero limbs ([zero] is the empty array). 26-bit limbs keep every
   intermediate product of the schoolbook and Montgomery multipliers within
   53 bits, comfortably inside OCaml's 63-bit native ints.

   The performance-sensitive operations are [pow_mod] / [pow_mod_ctx] /
   [pow_mod_fixed] — every simulated (EC)DHE handshake runs one or more
   modular exponentiations — and the Montgomery kernels behind {!Field}.
   The hot kernels use a fused single-pass CIOS multiplier, a dedicated
   squaring path ([mont_sqr]), sliding-window exponentiation and a
   fixed-base comb cache; {!Reference} retains the seed-era kernels as the
   obviously-correct baseline for property tests and the bench-regression
   harness. Everything else is simple schoolbook code. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

(* Strip leading (high-order) zero limbs to restore canonical form. *)
let norm (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int v =
  if v < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs v = if v = 0 then [] else (v land mask) :: limbs (v lsr limb_bits) in
  Array.of_list (limbs v)

let one = of_int 1
let two = of_int 2

let to_int_opt (a : t) =
  (* [(v lsl limb_bits) lor a.(i)] equals [v * base + a.(i)] (the ranges
     are disjoint), which fits iff [v <= (max_int - a.(i)) / base] — an
     exact bound for any limb width, unlike guarding on
     [max_int lsr limb_bits] alone, which under-admits whenever the top
     limb's capacity is not a full limb. Overflow is monotone in the
     remaining limbs, so rejecting at the first overflowing step is
     complete. *)
  let rec go i v =
    if i < 0 then Some v
    else if v > (max_int - a.(i)) lsr limb_bits then None
    else go (i - 1) ((v lsl limb_bits) lor a.(i))
  in
  go (Array.length a - 1) 0

let to_int_exn a =
  match to_int_opt a with
  | Some v -> v
  | None -> invalid_arg "Bignum.to_int_exn: does not fit"

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0
let is_one a = equal a one

let num_bits (a : t) =
  let n = Array.length a in
  if n = 0 then 0
  else
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0

let test_bit (a : t) i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let is_even a = not (test_bit a 0)

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    out.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  norm out

(* [sub a b] requires [a >= b]. *)
let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Bignum.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  norm out

let add_int a v = add a (of_int v)
let sub_int a v = sub a (of_int v)

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- s land mask;
        carry := s lsr limb_bits
      done;
      (* Propagate the final carry; it can span several limbs because the
         target slot may already hold accumulated value. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = out.(!k) + !carry in
        out.(!k) <- s land mask;
        carry := s lsr limb_bits;
        incr k
      done
    done;
    norm out
  end

let mul_int a v = mul a (of_int v)

let shift_left (a : t) bits : t =
  if bits < 0 then invalid_arg "Bignum.shift_left: negative";
  if is_zero a || bits = 0 then a
  else
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    let out = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl off in
      out.(i + limbs) <- out.(i + limbs) lor (v land mask);
      out.(i + limbs + 1) <- v lsr limb_bits
    done;
    norm out

let shift_right (a : t) bits : t =
  if bits < 0 then invalid_arg "Bignum.shift_right: negative";
  if is_zero a || bits = 0 then a
  else
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else
      let n = la - limbs in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limbs) lsr off in
        let hi =
          if off = 0 || i + limbs + 1 >= la then 0
          else (a.(i + limbs + 1) lsl (limb_bits - off)) land mask
        in
        out.(i) <- lo lor hi
      done;
      norm out

(* Binary long division: not fast, but it only runs during setup
   (Montgomery context construction, conversions) and in tests, never in
   the per-handshake hot path. *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let bits = num_bits a in
    let q = Array.make (Array.length a) 0 in
    (* Remainder kept as a mutable window at most one limb longer than b. *)
    let rlen = Array.length b + 1 in
    let r = Array.make rlen 0 in
    let r_ge_b () =
      let rec go i =
        if i < 0 then true
        else
          let bv = if i < Array.length b then b.(i) else 0 in
          if r.(i) <> bv then r.(i) > bv else go (i - 1)
      in
      go (rlen - 1)
    in
    let r_sub_b () =
      let borrow = ref 0 in
      for i = 0 to rlen - 1 do
        let bv = if i < Array.length b then b.(i) else 0 in
        let d = r.(i) - bv - !borrow in
        if d < 0 then begin
          r.(i) <- d + base;
          borrow := 1
        end
        else begin
          r.(i) <- d;
          borrow := 0
        end
      done;
      assert (!borrow = 0)
    in
    let r_shl1_or bit =
      let carry = ref bit in
      for i = 0 to rlen - 1 do
        let v = (r.(i) lsl 1) lor !carry in
        r.(i) <- v land mask;
        carry := v lsr limb_bits
      done;
      (* The remainder never outgrows b by more than one bit before the
         conditional subtraction below, so the final carry is always 0. *)
      assert (!carry = 0)
    in
    for i = bits - 1 downto 0 do
      r_shl1_or (if test_bit a i then 1 else 0);
      if r_ge_b () then begin
        r_sub_b ();
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (norm q, norm r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* --- Montgomery arithmetic (odd modulus) ------------------------------- *)

(* A fixed-base comb table (Lim–Lee): for a base [g] and exponents of at
   most [w * d] bits, [tbl.(j)] holds g^(Σ_{k ∈ bits j} 2^(k·d)) in
   Montgomery form, so an exponentiation costs [d] squarings and at most
   [d] multiplications instead of ~[bits] squarings plus window
   multiplications. Built once per (context, base) and cached on the
   context — {!Dh.gen_keypair}'s repeated g^priv over the same group is
   the payoff. *)
type fixed_base = {
  fb_ctx : mont;
  fb_base : t; (* canonical base, for cache lookup and fallback *)
  fb_w : int; (* comb teeth (rows) *)
  fb_d : int; (* digits per row: covers exponents below 2^(w*d) *)
  fb_tbl : int array array; (* 2^w entries, Montgomery form; [0] is unused *)
}

and mont = {
  m : int array; (* modulus, padded to [n] limbs *)
  modulus : t; (* canonical copy, for reductions *)
  n : int; (* limb count *)
  n0' : int; (* -m^-1 mod 2^26 *)
  r2 : int array; (* R^2 mod m, padded, R = 2^(26n) *)
  rm : int array; (* R mod m, padded: 1 in Montgomery form *)
  fb_lock : Mutex.t; (* guards [fb_cache] across domains *)
  mutable fb_cache : fixed_base list;
}

let mont_of_modulus (m : t) : mont =
  if is_zero m || is_even m then invalid_arg "Bignum.mont_of_modulus: modulus must be odd";
  let n = Array.length m in
  let padded = Array.make n 0 in
  Array.blit m 0 padded 0 n;
  (* n0' = -m0^-1 mod 2^26 via Newton iteration (5 steps reach 32 bits). *)
  let m0 = m.(0) in
  let inv = ref 1 in
  for _ = 1 to 5 do
    inv := !inv * (2 - (m0 * !inv)) land mask
  done;
  let n0' = base - !inv land mask in
  let n0' = n0' land mask in
  let r_mod_m = rem (shift_left one (n * limb_bits)) m in
  let r2 = rem (mul r_mod_m r_mod_m) m in
  let r2p = Array.make n 0 in
  Array.blit r2 0 r2p 0 (Array.length r2);
  let rmp = Array.make n 0 in
  Array.blit r_mod_m 0 rmp 0 (Array.length r_mod_m);
  {
    m = padded;
    modulus = m;
    n;
    n0' = n0';
    r2 = r2p;
    rm = rmp;
    fb_lock = Mutex.create ();
    fb_cache = [];
  }

(* Subtract the modulus in place from an (n+1)-limb accumulator whose value
   is known to lie in [0, 2m); shared tail of the kernels below. Writes the
   n-limb result into [out]. *)
let cond_sub_m_into ctx (t : int array) (hi : int) (out : int array) : unit =
  let n = ctx.n in
  let m = ctx.m in
  let ge =
    t.(hi + n) > 0
    ||
    let rec go i =
      if i < 0 then true
      else if Array.unsafe_get t (hi + i) <> Array.unsafe_get m i then
        Array.unsafe_get t (hi + i) > Array.unsafe_get m i
      else go (i - 1)
    in
    go (n - 1)
  in
  if ge then begin
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let d = Array.unsafe_get t (hi + i) - Array.unsafe_get m i - !borrow in
      if d < 0 then begin
        Array.unsafe_set out i (d + base);
        borrow := 1
      end
      else begin
        Array.unsafe_set out i d;
        borrow := 0
      end
    done
  end
  else Array.blit t hi out 0 n

let cond_sub_m ctx (t : int array) (hi : int) : int array =
  let out = Array.make ctx.n 0 in
  cond_sub_m_into ctx t hi out;
  out

(* Fused CIOS Montgomery multiplication: out = a * b * R^-1 mod m. The
   multiply and the reduction share one inner loop per outer limb, halving
   loop and memory traffic versus the two-pass seed kernel (retained in
   {!Reference}). Range check for the fused accumulator: t.(j) < 2^26 and
   ai*b.(j) + u*m.(j) < 2^53, so s stays below 2^53 + 2^28 — inside a
   63-bit int — and carries below 2^27. [a], [b] and the result are n-limb
   arrays (not necessarily canonical). *)
let mont_mul ctx (a : int array) (b : int array) : int array =
  let n = ctx.n in
  let m = ctx.m in
  let n0' = ctx.n0' in
  let t = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let ai = Array.unsafe_get a i in
    let s0 = Array.unsafe_get t 0 + (ai * Array.unsafe_get b 0) in
    let u = (s0 land mask) * n0' land mask in
    let carry = ref ((s0 + (u * Array.unsafe_get m 0)) lsr limb_bits) in
    for j = 1 to n - 1 do
      let s =
        Array.unsafe_get t j + (ai * Array.unsafe_get b j) + (u * Array.unsafe_get m j) + !carry
      in
      Array.unsafe_set t (j - 1) (s land mask);
      carry := s lsr limb_bits
    done;
    let s = Array.unsafe_get t n + !carry in
    Array.unsafe_set t (n - 1) (s land mask);
    Array.unsafe_set t n (s lsr limb_bits)
  done;
  cond_sub_m ctx t 0

(* Same fused CIOS pass writing into caller-provided buffers: [t] is an
   (n+1)-limb scratch, [dst] receives the n-limb result. [dst] may alias
   [a] or [b] — the accumulator lives in [t] and [dst] is only written by
   the final conditional subtract. Lets the few-limb exponentiation ladder
   below run without a single allocation per Montgomery operation. *)
let mont_mul_into ctx (t : int array) (dst : int array) (a : int array) (b : int array) : unit =
  let n = ctx.n in
  let m = ctx.m in
  let n0' = ctx.n0' in
  Array.fill t 0 (n + 1) 0;
  for i = 0 to n - 1 do
    let ai = Array.unsafe_get a i in
    let s0 = Array.unsafe_get t 0 + (ai * Array.unsafe_get b 0) in
    let u = (s0 land mask) * n0' land mask in
    let carry = ref ((s0 + (u * Array.unsafe_get m 0)) lsr limb_bits) in
    for j = 1 to n - 1 do
      let s =
        Array.unsafe_get t j + (ai * Array.unsafe_get b j) + (u * Array.unsafe_get m j) + !carry
      in
      Array.unsafe_set t (j - 1) (s land mask);
      carry := s lsr limb_bits
    done;
    let s = Array.unsafe_get t n + !carry in
    Array.unsafe_set t (n - 1) (s land mask);
    Array.unsafe_set t n (s lsr limb_bits)
  done;
  cond_sub_m_into ctx t 0 dst

(* Dedicated squaring via finely-integrated product scanning (FIPS):
   each output column accumulates its doubled cross products, its diagonal
   term, and its share of the Montgomery reduction in a single register
   before one store — ~1.5n² limb multiplications against the multiplier's
   2n², and none of the load/store churn of a separate double-width square.

   Column-accumulator range: a column gathers at most n doubled cross
   products (< n·2^53) plus a diagonal (< 2^52) plus n reduction products
   u_i·m_j (< n·2^52) plus an inter-column carry (< 2^36), so it stays
   below ~1.5n·2^53 — inside a 63-bit int for n up to ~340 limbs (~8800
   bits), far beyond any modulus this library handles. *)
let mont_sqr ctx (a : int array) : int array =
  let n = ctx.n in
  let m = ctx.m in
  let n0' = ctx.n0' in
  let u = Array.make n 0 in
  let out = Array.make (n + 1) 0 in
  (* Both inner loops are 2-way unrolled with independent accumulators:
     a single-multiply column loop is latency-bound on the add chain, and
     splitting it recovers the instruction-level parallelism the fused
     multiplier gets for free from its two products per iteration. *)
  (* conv x y k lo hi = Σ_{i=lo..hi} x_i · y_{k−i} *)
  let conv (x : int array) (y : int array) k lo hi =
    let s1 = ref 0 and s2 = ref 0 in
    let i = ref lo in
    while !i < hi do
      s1 := !s1 + (Array.unsafe_get x !i * Array.unsafe_get y (k - !i));
      s2 := !s2 + (Array.unsafe_get x (!i + 1) * Array.unsafe_get y (k - !i - 1));
      i := !i + 2
    done;
    if !i = hi then s1 := !s1 + (Array.unsafe_get x hi * Array.unsafe_get y (k - hi));
    !s1 + !s2
  in
  let carry = ref 0 in
  (* Low columns k = 0..n-1: full square column + reduction products of
     the u_i chosen so far, then pick u_k to zero the column. *)
  for k = 0 to n - 1 do
    let acc = ref !carry in
    acc := !acc + (conv a a k 0 ((k - 1) asr 1) lsl 1);
    (if k land 1 = 0 then
       let h = Array.unsafe_get a (k lsr 1) in
       acc := !acc + (h * h));
    acc := !acc + conv u m k 0 (k - 1);
    let uk = (!acc land mask) * n0' land mask in
    Array.unsafe_set u k uk;
    acc := !acc + (uk * Array.unsafe_get m 0);
    carry := !acc lsr limb_bits
  done;
  (* High columns k = n..2n-1 land directly in the output. *)
  for k = n to (2 * n) - 1 do
    let acc = ref !carry in
    acc := !acc + (conv a a k (k - n + 1) ((k - 1) asr 1) lsl 1);
    (if k land 1 = 0 && k lsr 1 < n then
       let h = Array.unsafe_get a (k lsr 1) in
       acc := !acc + (h * h));
    acc := !acc + conv u m k (k - n + 1) (n - 1);
    Array.unsafe_set out (k - n) (!acc land mask);
    carry := !acc lsr limb_bits
  done;
  Array.unsafe_set out n !carry;
  (* (a² + u·m)/R < 2m since a < m; one conditional subtract finishes. *)
  cond_sub_m ctx out 0

let pad_to n (a : t) =
  let out = Array.make n 0 in
  Array.blit a 0 out 0 (Array.length a);
  out

(* Montgomery form of a canonical value, and back. *)
let to_mont ctx (a : t) = mont_mul ctx (pad_to ctx.n (rem a ctx.modulus)) ctx.r2
let of_mont ctx (a : int array) = norm (mont_mul ctx a (pad_to ctx.n one))

(* Sliding-window width for an exponent of [ebits] bits: the widest table
   whose construction cost (2^(w-1) multiplications) is amortized by the
   ~ebits/(w+1) window multiplications it saves. Capped at 5 (a 16-entry
   odd-powers table), past which returns diminish below 4096 bits. *)
let window_width ebits =
  if ebits <= 8 then 1
  else if ebits <= 24 then 2
  else if ebits <= 80 then 3
  else if ebits <= 240 then 4
  else 5

(* Bits [lo..hi] of [e] (inclusive) as an int; hi - lo < 26. *)
let bits_range (e : t) lo hi =
  let v = ref 0 in
  for i = hi downto lo do
    v := (!v lsl 1) lor (if test_bit e i then 1 else 0)
  done;
  !v

(* Few-limb exponentiation ladder: below ~5 limbs the generic path's
   per-operation allocations (CIOS accumulator, kernel output, squaring
   scratch) cost more than the arithmetic itself, so this variant walks
   the same sliding window through {!mont_mul_into} with one shared
   scratch and a single in-place accumulator. Squarings reuse the fused
   multiplier — at this size the dedicated squaring kernel's setup
   overhead outweighs the multiplications it saves. *)
let pow_mont_small (ctx : mont) (am : int array) (e : t) : int array =
  let n = ctx.n in
  let ebits = num_bits e in
  let w = window_width ebits in
  let t = Array.make (n + 1) 0 in
  let tbl =
    if w = 1 then [| am |]
    else begin
      let tbl = Array.init (1 lsl (w - 1)) (fun _ -> Array.make n 0) in
      Array.blit am 0 tbl.(0) 0 n;
      let a2 = Array.make n 0 in
      mont_mul_into ctx t a2 am am;
      for i = 1 to Array.length tbl - 1 do
        mont_mul_into ctx t tbl.(i) tbl.(i - 1) a2
      done;
      tbl
    end
  in
  let acc = Array.make n 0 in
  let started = ref false in
  let i = ref (ebits - 1) in
  while !i >= 0 do
    if not (test_bit e !i) then begin
      if !started then mont_mul_into ctx t acc acc acc;
      decr i
    end
    else begin
      let l = ref (max 0 (!i - w + 1)) in
      while not (test_bit e !l) do
        incr l
      done;
      let v = bits_range e !l !i in
      if !started then begin
        for _ = 1 to !i - !l + 1 do
          mont_mul_into ctx t acc acc acc
        done;
        mont_mul_into ctx t acc acc tbl.((v - 1) / 2)
      end
      else Array.blit tbl.((v - 1) / 2) 0 acc 0 n;
      started := true;
      i := !l - 1
    end
  done;
  acc

(* Left-to-right sliding-window exponentiation over a Montgomery context:
   squarings take the dedicated [mont_sqr] path; multiplications hit a
   precomputed odd-powers table a^1, a^3, …, a^(2^w − 1), so runs of zero
   bits cost squarings only. *)
let pow_mont (ctx : mont) (am : int array) (e : t) : int array =
  if ctx.n <= 4 then pow_mont_small ctx am e
  else
  let ebits = num_bits e in
  let w = window_width ebits in
  if w = 1 then begin
    let acc = ref am in
    for i = ebits - 2 downto 0 do
      acc := mont_sqr ctx !acc;
      if test_bit e i then acc := mont_mul ctx !acc am
    done;
    !acc
  end
  else begin
    let tbl = Array.make (1 lsl (w - 1)) am in
    let a2 = mont_sqr ctx am in
    for i = 1 to Array.length tbl - 1 do
      tbl.(i) <- mont_mul ctx tbl.(i - 1) a2
    done;
    let acc = ref ctx.rm in
    let started = ref false in
    let i = ref (ebits - 1) in
    while !i >= 0 do
      if not (test_bit e !i) then begin
        if !started then acc := mont_sqr ctx !acc;
        decr i
      end
      else begin
        (* Largest window ending in a set bit: [l..i], l chosen so the
           windowed value is odd and at most w bits wide. *)
        let l = ref (max 0 (!i - w + 1)) in
        while not (test_bit e !l) do
          incr l
        done;
        let v = bits_range e !l !i in
        if !started then
          for _ = 1 to !i - !l + 1 do
            acc := mont_sqr ctx !acc
          done;
        acc := (if !started then mont_mul ctx !acc tbl.((v - 1) / 2) else tbl.((v - 1) / 2));
        started := true;
        i := !l - 1
      end
    done;
    !acc
  end

(* Native-word fast path: when the modulus fits 31 bits, every product of
   two residues fits a 62-bit tagged int, so plain square-and-multiply on
   hardware integers (with hardware division for the reduction) beats any
   limb-array machinery — and requires no Montgomery setup at all. The
   31-bit cap is exactly the point where a*b can no longer overflow the
   63-bit native int. Caller guarantees m >= 2 and e > 0. *)
let pow_mod_native_bits = 31

let pow_mod_native (mi : int) (a : t) (e : t) : t =
  let ai = to_int_exn (rem a (of_int mi)) in
  let acc = ref ai in
  for i = num_bits e - 2 downto 0 do
    acc := !acc * !acc mod mi;
    if test_bit e i then acc := !acc * ai mod mi
  done;
  of_int !acc

let pow_mod_ctx (ctx : mont) (a : t) (e : t) : t =
  Obs.Kernel.(bump pow_mod);
  if is_zero e then rem one ctx.modulus
  else if num_bits ctx.modulus <= pow_mod_native_bits then
    pow_mod_native (to_int_exn ctx.modulus) a e
  else of_mont ctx (pow_mont ctx (to_mont ctx a) e)

(* a^e mod m. Native ints for word-sized m (no Montgomery setup at all);
   Montgomery sliding-window for other odd m; generic square-and-multiply
   with binary reduction otherwise. *)
let pow_mod (a : t) (e : t) (m : t) : t =
  if is_zero m then raise Division_by_zero;
  if is_one m then zero
  else if is_zero e then rem one m
  else if num_bits m <= pow_mod_native_bits then begin
    (* Same kernel-counter semantics as before the fast path: odd moduli
       counted as a pow_mod kernel hit, even ones never did. *)
    if not (is_even m) then Obs.Kernel.(bump pow_mod);
    pow_mod_native (to_int_exn m) a e
  end
  else if is_even m then begin
    (* Right-to-left square and multiply with explicit reduction; even
       moduli never occur on hot paths. *)
    let e_bits = num_bits e in
    let acc = ref (rem one m) in
    let b = ref (rem a m) in
    for i = 0 to e_bits - 1 do
      if test_bit e i then acc := rem (mul !acc !b) m;
      if i < e_bits - 1 then b := rem (mul !b !b) m
    done;
    !acc
  end
  else pow_mod_ctx (mont_of_modulus m) a e

(* --- Fixed-base comb ----------------------------------------------------- *)

let fixed_base_build ctx (g : t) ~w ~d : fixed_base =
  let gm = to_mont ctx g in
  (* rows.(k) = g^(2^(k*d)) in Montgomery form. *)
  let rows = Array.make w gm in
  for k = 1 to w - 1 do
    let x = ref rows.(k - 1) in
    for _ = 1 to d do
      x := mont_sqr ctx !x
    done;
    rows.(k) <- !x
  done;
  let tbl = Array.make (1 lsl w) ctx.rm in
  for j = 1 to (1 lsl w) - 1 do
    let low = j land -j in
    let k = ref 0 in
    let v = ref low in
    while !v > 1 do
      v := !v lsr 1;
      incr k
    done;
    tbl.(j) <- (if j = low then rows.(!k) else mont_mul ctx tbl.(j - low) rows.(!k))
  done;
  { fb_ctx = ctx; fb_base = rem g ctx.modulus; fb_w = w; fb_d = d; fb_tbl = tbl }

let fixed_base_teeth = 4

let fixed_base (ctx : mont) (g : t) ~max_bits : fixed_base =
  if max_bits <= 0 then invalid_arg "Bignum.fixed_base: max_bits must be positive";
  let g = rem g ctx.modulus in
  let d = (max_bits + fixed_base_teeth - 1) / fixed_base_teeth in
  Mutex.lock ctx.fb_lock;
  let found =
    List.find_opt (fun fb -> fb.fb_d = d && equal fb.fb_base g) ctx.fb_cache
  in
  match found with
  | Some fb ->
      Mutex.unlock ctx.fb_lock;
      fb
  | None ->
      (* Build under the lock: redundant concurrent builds of a 2^w-entry
         table cost more than the brief exclusion, and callers only hit
         this once per (group, base). *)
      let fb =
        Fun.protect
          ~finally:(fun () -> Mutex.unlock ctx.fb_lock)
          (fun () ->
            let fb = fixed_base_build ctx g ~w:fixed_base_teeth ~d in
            ctx.fb_cache <- fb :: ctx.fb_cache;
            fb)
      in
      fb

let pow_mod_fixed (fb : fixed_base) (e : t) : t =
  Obs.Kernel.(bump pow_mod_fixed);
  let ctx = fb.fb_ctx in
  if is_zero e then rem one ctx.modulus
  else if num_bits e > fb.fb_w * fb.fb_d then
    (* Wider than the table covers; correctness over speed. *)
    pow_mod_ctx ctx fb.fb_base e
  else begin
    let d = fb.fb_d in
    let acc = ref ctx.rm in
    let started = ref false in
    for i = d - 1 downto 0 do
      if !started then acc := mont_sqr ctx !acc;
      let j = ref 0 in
      for k = fb.fb_w - 1 downto 0 do
        j := (!j lsl 1) lor (if test_bit e (i + (k * d)) then 1 else 0)
      done;
      if !j <> 0 then begin
        acc := (if !started then mont_mul ctx !acc fb.fb_tbl.(!j) else fb.fb_tbl.(!j));
        started := true
      end
    done;
    of_mont ctx !acc
  end

(* --- Seed-era reference kernels -------------------------------------------
   Verbatim copies of the pre-optimization multiplier and exponentiation
   loop. They are the semantic baseline: the property suite asserts the
   windowed/comb paths agree with these on random inputs, and the bench
   harness reports speedups against them. Do not "optimize" this module. *)

module Reference = struct
  let mont_mul ctx (a : int array) (b : int array) : int array =
    let n = ctx.n in
    let m = ctx.m in
    let t = Array.make (n + 2) 0 in
    for i = 0 to n - 1 do
      let ai = a.(i) in
      let carry = ref 0 in
      for j = 0 to n - 1 do
        let s = t.(j) + (ai * b.(j)) + !carry in
        t.(j) <- s land mask;
        carry := s lsr limb_bits
      done;
      let s = t.(n) + !carry in
      t.(n) <- s land mask;
      t.(n + 1) <- t.(n + 1) + (s lsr limb_bits);
      let mi = t.(0) * ctx.n0' land mask in
      let s = t.(0) + (mi * m.(0)) in
      let carry = ref (s lsr limb_bits) in
      for j = 1 to n - 1 do
        let s = t.(j) + (mi * m.(j)) + !carry in
        t.(j - 1) <- s land mask;
        carry := s lsr limb_bits
      done;
      let s = t.(n) + !carry in
      t.(n - 1) <- s land mask;
      t.(n) <- t.(n + 1) + (s lsr limb_bits);
      t.(n + 1) <- 0
    done;
    let out = Array.sub t 0 n in
    (* Conditional final subtraction: t may be in [0, 2m). *)
    let ge =
      if t.(n) > 0 then true
      else begin
        let rec go i =
          if i < 0 then true else if out.(i) <> m.(i) then out.(i) > m.(i) else go (i - 1)
        in
        go (n - 1)
      end
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let d = out.(i) - m.(i) - !borrow in
        if d < 0 then begin
          out.(i) <- d + base;
          borrow := 1
        end
        else begin
          out.(i) <- d;
          borrow := 0
        end
      done
    end;
    out

  let pow_mod_ctx (ctx : mont) (a : t) (e : t) : t =
    if is_zero e then rem one ctx.modulus
    else begin
      let n = ctx.n in
      let am = mont_mul ctx (pad_to n (rem a ctx.modulus)) ctx.r2 in
      let acc = ref (mont_mul ctx (pad_to n one) ctx.r2) in
      for i = num_bits e - 1 downto 0 do
        acc := mont_mul ctx !acc !acc;
        if test_bit e i then acc := mont_mul ctx !acc am
      done;
      norm (mont_mul ctx !acc (pad_to n one))
    end

  let pow_mod (a : t) (e : t) (m : t) : t =
    if is_zero m then raise Division_by_zero;
    if is_one m then zero
    else if is_zero e then rem one m
    else if is_even m then begin
      let e_bits = num_bits e in
      let acc = ref (rem one m) in
      let b = ref (rem a m) in
      for i = 0 to e_bits - 1 do
        if test_bit e i then acc := rem (mul !acc !b) m;
        if i < e_bits - 1 then b := rem (mul !b !b) m
      done;
      !acc
    end
    else pow_mod_ctx (mont_of_modulus m) a e
end

(* Modular inverse for prime modulus via Fermat's little theorem. Every
   modulus we invert under (EC field primes) is prime. *)
let mod_inverse_prime (a : t) (p : t) : t =
  let a = rem a p in
  if is_zero a then invalid_arg "Bignum.mod_inverse_prime: zero has no inverse";
  pow_mod a (sub p two) p

(* --- Prime-field elements in Montgomery form ----------------------------
   Elliptic-curve point arithmetic performs long chains of modular
   multiplications; keeping operands in Montgomery form makes each one a
   single CIOS pass instead of a multiply followed by binary division. *)

module Field = struct
  type ctx = mont
  type fe = int array (* n-limb, Montgomery form, < m *)

  (* Aliases for whole-number operations shadowed by the field ops below. *)
  let bignum_sub = sub

  let create (m : t) : ctx = mont_of_modulus m
  let modulus (c : ctx) = c.modulus

  let of_bignum (c : ctx) (a : t) : fe = to_mont c a
  let to_bignum (c : ctx) (a : fe) : t = of_mont c a

  let zero (c : ctx) : fe = Array.make c.n 0
  let one (c : ctx) : fe = of_bignum c one

  let is_zero (a : fe) = Array.for_all (fun v -> v = 0) a
  let equal (a : fe) (b : fe) = a = b

  let add (c : ctx) (a : fe) (b : fe) : fe =
    let n = c.n in
    let out = Array.make n 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let s = a.(i) + b.(i) + !carry in
      out.(i) <- s land mask;
      carry := s lsr limb_bits
    done;
    (* Reduce once if out >= m (sum < 2m so one subtraction suffices). *)
    let ge =
      !carry > 0
      ||
      let rec go i =
        if i < 0 then true
        else if out.(i) <> c.m.(i) then out.(i) > c.m.(i)
        else go (i - 1)
      in
      go (n - 1)
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let d = out.(i) - c.m.(i) - !borrow in
        if d < 0 then begin
          out.(i) <- d + base;
          borrow := 1
        end
        else begin
          out.(i) <- d;
          borrow := 0
        end
      done
    end;
    out

  let sub (c : ctx) (a : fe) (b : fe) : fe =
    let n = c.n in
    let out = Array.make n 0 in
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let d = a.(i) - b.(i) - !borrow in
      if d < 0 then begin
        out.(i) <- d + base;
        borrow := 1
      end
      else begin
        out.(i) <- d;
        borrow := 0
      end
    done;
    if !borrow = 1 then begin
      (* Underflow: add the modulus back. *)
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let s = out.(i) + c.m.(i) + !carry in
        out.(i) <- s land mask;
        carry := s lsr limb_bits
      done
    end;
    out

  let mul (c : ctx) (a : fe) (b : fe) : fe = mont_mul c a b
  let sqr (c : ctx) (a : fe) : fe = mont_sqr c a

  let mul_small (c : ctx) (a : fe) k =
    (* k is a small non-negative int (<= 8 in practice); double-and-add
       keeps this logarithmic — it sits on the EC hot path. *)
    if k = 0 then zero c
    else begin
      let rec go k = if k = 1 then a else
        let half = go (k / 2) in
        let dbl = add c half half in
        if k land 1 = 1 then add c dbl a else dbl
      in
      go k
    end

  let neg (c : ctx) (a : fe) : fe = sub c (zero c) a

  let inv (c : ctx) (a : fe) : fe =
    (* Fermat inversion; modulus is prime for every caller. *)
    let av = to_bignum c a in
    if is_zero av then invalid_arg "Field.inv: zero";
    of_bignum c (pow_mod_ctx c av (bignum_sub c.modulus two))

  let pow (c : ctx) (a : fe) (e : t) : fe =
    if is_zero e then one c else pow_mont c a e
end

(* --- Conversions -------------------------------------------------------- *)

let of_bytes_be (s : string) : t =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be ?len (a : t) : string =
  let nbytes = (num_bits a + 7) / 8 in
  let nbytes = max nbytes 1 in
  let width = match len with None -> nbytes | Some l -> l in
  if nbytes > width then invalid_arg "Bignum.to_bytes_be: value too wide";
  String.init width (fun i ->
      let byte_index = width - 1 - i in
      let bit = byte_index * 8 in
      let limb = bit / limb_bits and off = bit mod limb_bits in
      if limb >= Array.length a then '\000'
      else
        let lo = a.(limb) lsr off in
        let hi =
          if limb + 1 < Array.length a && off > limb_bits - 8 then
            a.(limb + 1) lsl (limb_bits - off)
          else 0
        in
        Char.chr ((lo lor hi) land 0xff))

let of_hex h = of_bytes_be (Wire.Hex.decode h)

let to_hex a = Wire.Hex.encode (to_bytes_be a)

let pp ppf a = Format.fprintf ppf "0x%s" (to_hex a)

(* Decimal rendering, for human-readable sizes in reports. *)
let to_decimal (a : t) : string =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let ten = of_int 10 in
    let rec go a =
      if not (is_zero a) then begin
        let q, r = divmod a ten in
        go q;
        Buffer.add_char buf (Char.chr (Char.code '0' + to_int_exn r))
      end
    in
    go a;
    Buffer.contents buf
  end

let of_decimal (s : string) : t =
  if s = "" then invalid_arg "Bignum.of_decimal: empty";
  let acc = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> acc := add (mul_int !acc 10) (of_int (Char.code c - Char.code '0'))
      | '_' -> ()
      | _ -> invalid_arg "Bignum.of_decimal: bad digit")
    s;
  !acc
