(* Elliptic-curve groups in short Weierstrass form y^2 = x^3 + ax + b over
   a prime field, with Jacobian-coordinate point arithmetic.

   Two kinds of curves are provided, mirroring {!Dh}: [p256] is the real
   NIST P-256 curve (the dominant TLS ECDHE curve in 2016), used by tests,
   examples and benches; [generate_small ~bits ~seed] deterministically
   builds a small supersingular curve (y^2 = x^3 + x over p = 4q - 1 with
   q prime, group order 4q) so simulation sweeps can run millions of
   handshakes. Both are real EC groups exercising the same code path; the
   small curves' cryptographic weakness (MOV) is irrelevant to the
   measurements, as discussed in DESIGN.md.

   Scalar multiplication is the campaign's hottest kernel (one or two per
   simulated handshake), so it stays entirely in Jacobian coordinates:
   [scalar_mult] recodes the scalar in width-w NAF against a table of odd
   multiples, and [scalar_mult_base] walks a per-curve fixed-base comb of
   affine points (built once in [make_curve]) with mixed additions. The
   ladders run over a destination-passing field backend ({!fops}): the
   generic [Bignum.Field] for simulation curves, and the specialized
   {!P256_field} (Solinas reduction, no Montgomery form) whenever the
   curve's field prime is the NIST P-256 prime — so the inner loop does
   no per-operation boxing at all. The seed-era double-and-add loop
   survives in {!Reference} as the semantic baseline for property tests
   and the bench harness.

   Arithmetic is not constant-time; this library measures protocol
   behaviour, it does not defend live traffic. *)

module F = Bignum.Field

type curve = {
  name : string;
  fctx : F.ctx;
  a : F.fe;
  b : F.fe;
  a_is_minus3 : bool;
  use_p256 : bool; (* field prime = P-256 prime: use the Solinas backend *)
  gx : Bignum.t;
  gy : Bignum.t;
  n : Bignum.t; (* order of the base point *)
  h : int; (* cofactor *)
  n_mont : Bignum.mont Lazy.t; (* cached context for mod-n arithmetic (ECDSA) *)
  comb : comb; (* fixed-base comb for [scalar_mult_base], built eagerly *)
}

(* Lim–Lee comb over the base point: [ctable.(j)] is the affine form of
   Σ_{k ∈ bits j} 2^(k·cd) · G ([None] for the point at infinity, which a
   tooth pattern can hit when the implied scalar is a multiple of n).
   Entries are stored in the curve's backend representation (Montgomery
   limbs for generic curves, Solinas limbs for P-256), so every comb
   addition is a mixed addition with no conversion. *)
and comb = { cw : int; cd : int; ctable : (int array * int array) option array }

type point = Inf | Affine of Bignum.t * Bignum.t

let curve_name c = c.name
let curve_p c = F.modulus c.fctx
let curve_order c = c.n
let base_point c = Affine (c.gx, c.gy)

(* --- Jacobian arithmetic -------------------------------------------------
   (X, Y, Z) represents affine (X/Z^2, Y/Z^3); Z = 0 is infinity. *)

type jac = { x : F.fe; y : F.fe; z : F.fe }

let jac_inf c = { x = F.one c.fctx; y = F.one c.fctx; z = F.zero c.fctx }
let jac_is_inf j = F.is_zero j.z

let to_jac c = function
  | Inf -> jac_inf c
  | Affine (x, y) ->
      { x = F.of_bignum c.fctx x; y = F.of_bignum c.fctx y; z = F.one c.fctx }

let of_jac c j =
  if jac_is_inf j then Inf
  else begin
    let f = c.fctx in
    let zinv = F.inv f j.z in
    let zinv2 = F.sqr f zinv in
    let x = F.mul f j.x zinv2 in
    let y = F.mul f j.y (F.mul f zinv2 zinv) in
    Affine (F.to_bignum f x, F.to_bignum f y)
  end

let jac_double c j =
  if jac_is_inf j || F.is_zero j.y then jac_inf c
  else begin
    let f = c.fctx in
    let y2 = F.sqr f j.y in
    let s = F.mul_small f (F.mul f j.x y2) 4 in
    let m =
      if c.a_is_minus3 then begin
        (* 3(X - Z^2)(X + Z^2) *)
        let z2 = F.sqr f j.z in
        F.mul_small f (F.mul f (F.sub f j.x z2) (F.add f j.x z2)) 3
      end
      else begin
        let x2 = F.sqr f j.x in
        let z4 = F.sqr f (F.sqr f j.z) in
        F.add f (F.mul_small f x2 3) (F.mul f c.a z4)
      end
    in
    let x' = F.sub f (F.sqr f m) (F.mul_small f s 2) in
    let y' = F.sub f (F.mul f m (F.sub f s x')) (F.mul_small f (F.sqr f y2) 8) in
    let z' = F.mul_small f (F.mul f j.y j.z) 2 in
    { x = x'; y = y'; z = z' }
  end

let jac_add c p q =
  if jac_is_inf p then q
  else if jac_is_inf q then p
  else begin
    let f = c.fctx in
    let z12 = F.sqr f p.z and z2'2 = F.sqr f q.z in
    let u1 = F.mul f p.x z2'2 and u2 = F.mul f q.x z12 in
    let s1 = F.mul f p.y (F.mul f z2'2 q.z) and s2 = F.mul f q.y (F.mul f z12 p.z) in
    if F.equal u1 u2 then
      if F.equal s1 s2 then jac_double c p else jac_inf c
    else begin
      let h = F.sub f u2 u1 in
      let r = F.sub f s2 s1 in
      let h2 = F.sqr f h in
      let h3 = F.mul f h2 h in
      let u1h2 = F.mul f u1 h2 in
      let x3 = F.sub f (F.sub f (F.sqr f r) h3) (F.mul_small f u1h2 2) in
      let y3 = F.sub f (F.mul f r (F.sub f u1h2 x3)) (F.mul f s1 h3) in
      let z3 = F.mul f h (F.mul f p.z q.z) in
      { x = x3; y = y3; z = z3 }
    end
  end

(* --- Field backend dispatch -----------------------------------------------

   Both field representations are raw [int array]s (Montgomery limbs for
   the generic backend, 29-bit Solinas limbs for P-256), so the point
   formulas below are written once against a small dispatch layer: a
   variant names the backend, and every op is a module-level function
   that branches on it once — a perfectly-predicted branch plus a direct
   call on each arm, measurably cheaper in the ladder than a record of
   closures. The specialized ops mutate in place with per-workspace
   scratch; the generic ones compute functionally and blit, which keeps
   [Bignum.Field] untouched. Destinations may alias operands in every
   op. *)

type fops =
  | P256 of P256_field.state
  | Generic of F.ctx

let backend_width = function
  | P256 _ -> P256_field.words
  | Generic fctx -> Array.length (F.zero fctx)

let gblit r dst = Array.blit r 0 dst 0 (Array.length r)

let fmul o dst a b =
  match o with
  | P256 st -> P256_field.mul st dst a b
  | Generic f -> gblit (F.mul f a b) dst

let fsqr o dst a =
  match o with
  | P256 st -> P256_field.sqr st dst a
  | Generic f -> gblit (F.sqr f a) dst

let fadd o dst a b =
  match o with
  | P256 _ -> P256_field.add dst a b
  | Generic f -> gblit (F.add f a b) dst

let fsub o dst a b =
  match o with
  | P256 _ -> P256_field.sub dst a b
  | Generic f -> gblit (F.sub f a b) dst

let fmuls o dst a k =
  match o with
  | P256 _ -> P256_field.mul_small dst a k
  | Generic f -> gblit (F.mul_small f a k) dst

let fneg o dst a =
  match o with
  | P256 _ -> P256_field.neg dst a
  | Generic f -> gblit (F.neg f a) dst

let finv o dst a =
  match o with
  | P256 st -> P256_field.inv st dst a
  | Generic f -> gblit (F.inv f a) dst

let fz o a = match o with P256 _ -> P256_field.is_zero a | Generic _ -> F.is_zero a
let feq o a b = match o with P256 _ -> P256_field.equal a b | Generic _ -> F.equal a b

let fone o dst =
  match o with
  | P256 _ -> P256_field.set_one dst
  | Generic f -> gblit (F.one f) dst

let fof o v =
  match o with
  | P256 _ -> P256_field.of_bignum v
  | Generic f -> F.of_bignum f v

let fto o a =
  match o with
  | P256 _ -> P256_field.to_bignum a
  | Generic f -> F.to_bignum f a

(* A mutable Jacobian point over the backend representation. The array
   fields are mutable so a table entry can be viewed through a negated-y
   scratch buffer without copying (wNAF negative digits). *)
type jpt = {
  mutable jx : int array;
  mutable jy : int array;
  mutable jz : int array;
  mutable jinf : bool;
}

(* Per-call workspace: the backend ops plus temporaries for the point
   formulas. Never shared across domains (parallel campaigns run one
   workspace per call). *)
type ws = {
  o : fops;
  ca : int array; (* curve [a] in backend representation *)
  t1 : int array;
  t2 : int array;
  t3 : int array;
  t4 : int array;
  t5 : int array;
  t6 : int array;
  t7 : int array;
  nbuf : int array; (* negated y for wNAF table lookups *)
  tneg : jpt; (* view of a table entry with y := nbuf *)
}

let jpt_make o =
  let w = backend_width o in
  { jx = Array.make w 0; jy = Array.make w 0; jz = Array.make w 0; jinf = true }

let jpt_blit dst src =
  gblit src.jx dst.jx;
  gblit src.jy dst.jy;
  gblit src.jz dst.jz;
  dst.jinf <- src.jinf

let make_ws c =
  let o =
    if c.use_p256 then P256 (P256_field.create_state ()) else Generic c.fctx
  in
  let mk () = Array.make (backend_width o) 0 in
  {
    o;
    ca = fof o (F.to_bignum c.fctx c.a);
    t1 = mk ();
    t2 = mk ();
    t3 = mk ();
    t4 = mk ();
    t5 = mk ();
    t6 = mk ();
    t7 = mk ();
    nbuf = mk ();
    tneg = { jx = mk (); jy = mk (); jz = mk (); jinf = false };
  }

let jpt_of_point ws dst = function
  | Inf -> dst.jinf <- true
  | Affine (x, y) ->
      dst.jx <- fof ws.o x;
      dst.jy <- fof ws.o y;
      fone ws.o dst.jz;
      dst.jinf <- false

let point_of_jpt ws j =
  if j.jinf || fz ws.o j.jz then Inf
  else begin
    let o = ws.o in
    finv o ws.t1 j.jz;
    fsqr o ws.t2 ws.t1;
    fmul o ws.t3 j.jx ws.t2;
    fmul o ws.t4 ws.t2 ws.t1;
    fmul o ws.t5 j.jy ws.t4;
    Affine (fto o ws.t3, fto o ws.t5)
  end

(* p <- 2p, in place. Curves with a = -3 (P-256 and friends) take the
   3M + 5S dbl-2001-b route:
     delta = z^2, gamma = y^2, beta = x*gamma,
     alpha = 3(x - delta)(x + delta),
     x' = alpha^2 - 8 beta, z' = (y + z)^2 - gamma - delta,
     y' = alpha(4 beta - x') - 8 gamma^2.
   Other curves keep the general dbl-1986-cc formulas (as [jac_double]). *)
let rec jpt_dbl c ws p =
  if p.jinf then ()
  else if fz ws.o p.jy then p.jinf <- true
  else
    match ws.o with
    | P256 st when c.a_is_minus3 ->
        (* One direct call into the fused backend kernel instead of
           fourteen dispatched field ops. *)
        P256_field.point_dbl st p.jx p.jy p.jz
    | _ -> jpt_dbl_generic c ws p

and jpt_dbl_generic c ws p =
  if c.a_is_minus3 then begin
    let o = ws.o in
    fsqr o ws.t1 p.jz (* delta *);
    fsqr o ws.t2 p.jy (* gamma *);
    fmul o ws.t3 p.jx ws.t2 (* beta *);
    fsub o ws.t4 p.jx ws.t1;
    fadd o ws.t5 p.jx ws.t1;
    fmul o ws.t4 ws.t4 ws.t5;
    fmuls o ws.t4 ws.t4 3 (* alpha *);
    fadd o ws.t5 p.jy p.jz;
    fsqr o ws.t5 ws.t5;
    fsub o ws.t5 ws.t5 ws.t2;
    fsub o ws.t5 ws.t5 ws.t1 (* z' = (y+z)^2 - gamma - delta *);
    fsqr o ws.t6 ws.t4;
    fmuls o ws.t7 ws.t3 8;
    fsub o p.jx ws.t6 ws.t7 (* x' = alpha^2 - 8 beta *);
    fmuls o ws.t6 ws.t3 4;
    fsub o ws.t6 ws.t6 p.jx;
    fmul o ws.t6 ws.t4 ws.t6 (* alpha (4 beta - x') *);
    fsqr o ws.t7 ws.t2;
    fmuls o ws.t7 ws.t7 8 (* 8 gamma^2 *);
    fsub o p.jy ws.t6 ws.t7;
    gblit ws.t5 p.jz
  end
  else begin
    let o = ws.o in
    fsqr o ws.t1 p.jy (* y^2 *);
    fmul o ws.t2 p.jx ws.t1;
    fmuls o ws.t2 ws.t2 4 (* s = 4xy^2 *);
    fsqr o ws.t4 p.jx;
    fmuls o ws.t4 ws.t4 3 (* 3x^2 *);
    fsqr o ws.t5 p.jz;
    fsqr o ws.t5 ws.t5 (* z^4 *);
    fmul o ws.t6 ws.ca ws.t5;
    fadd o ws.t3 ws.t4 ws.t6 (* m = 3x^2 + a z^4 *);
    fmul o ws.t7 p.jy p.jz;
    fmuls o ws.t7 ws.t7 2 (* z' = 2yz *);
    fsqr o ws.t5 ws.t3;
    fmuls o ws.t6 ws.t2 2;
    fsub o p.jx ws.t5 ws.t6 (* x' = m^2 - 2s *);
    fsub o ws.t5 ws.t2 p.jx;
    fmul o ws.t6 ws.t3 ws.t5 (* m(s - x') *);
    fsqr o ws.t5 ws.t1;
    fmuls o ws.t5 ws.t5 8 (* 8y^4 *);
    fsub o p.jy ws.t6 ws.t5;
    gblit ws.t7 p.jz
  end

(* p <- p + q, in place; [q] is only read and must not share buffers with
   [p]. Same add-1986-cc formulas as [jac_add]. *)
let rec jpt_add c ws p q =
  if q.jinf then ()
  else if p.jinf then jpt_blit p q
  else
    match ws.o with
    | P256 st -> (
        match P256_field.point_add st p.jx p.jy p.jz q.jx q.jy q.jz with
        | 1 -> jpt_dbl c ws p
        | 2 -> p.jinf <- true
        | _ -> ())
    | Generic _ -> jpt_add_generic c ws p q

and jpt_add_generic c ws p q =
  begin
    let o = ws.o in
    fsqr o ws.t1 p.jz (* z1^2 *);
    fsqr o ws.t2 q.jz (* z2^2 *);
    fmul o ws.t3 p.jx ws.t2 (* u1 *);
    fmul o ws.t4 q.jx ws.t1 (* u2 *);
    fmul o ws.t5 ws.t2 q.jz;
    fmul o ws.t5 p.jy ws.t5 (* s1 = y1 z2^3 *);
    fmul o ws.t6 ws.t1 p.jz;
    fmul o ws.t6 q.jy ws.t6 (* s2 = y2 z1^3 *);
    if feq o ws.t3 ws.t4 then
      if feq o ws.t5 ws.t6 then jpt_dbl c ws p else p.jinf <- true
    else begin
      fsub o ws.t4 ws.t4 ws.t3 (* h = u2 - u1 *);
      fsub o ws.t6 ws.t6 ws.t5 (* r = s2 - s1 *);
      fmul o ws.t7 p.jz q.jz;
      fmul o p.jz ws.t7 ws.t4 (* z3 = h z1 z2 *);
      fsqr o ws.t1 ws.t4 (* h^2 *);
      fmul o ws.t2 ws.t1 ws.t4 (* h^3 *);
      fmul o ws.t7 ws.t3 ws.t1 (* u1 h^2 *);
      fsqr o ws.t1 ws.t6;
      fsub o ws.t1 ws.t1 ws.t2 (* r^2 - h^3 *);
      fmuls o ws.t4 ws.t7 2;
      fsub o p.jx ws.t1 ws.t4 (* x3 = r^2 - h^3 - 2 u1 h^2 *);
      fsub o ws.t1 ws.t7 p.jx;
      fmul o ws.t3 ws.t6 ws.t1 (* r (u1 h^2 - x3) *);
      fmul o ws.t1 ws.t5 ws.t2 (* s1 h^3 *);
      fsub o p.jy ws.t3 ws.t1
    end
  end

(* p <- p + (ax, ay) with the second operand affine (Z = 1): saves four
   multiplications and a squaring over [jpt_add]; it is what makes the
   comb's affine table pay. *)
let rec jpt_add_affine c ws p ax ay =
  let o = ws.o in
  if p.jinf then begin
    gblit ax p.jx;
    gblit ay p.jy;
    fone o p.jz;
    p.jinf <- false
  end
  else
    match o with
    | P256 st -> (
        match P256_field.point_add_affine st p.jx p.jy p.jz ax ay with
        | 1 -> jpt_dbl c ws p
        | 2 -> p.jinf <- true
        | _ -> ())
    | Generic _ -> jpt_add_affine_generic c ws p ax ay

and jpt_add_affine_generic c ws p ax ay =
  let o = ws.o in
  begin
    fsqr o ws.t1 p.jz (* z1^2 *);
    fmul o ws.t2 ax ws.t1 (* u2 *);
    fmul o ws.t3 ws.t1 p.jz;
    fmul o ws.t3 ay ws.t3 (* s2 = ay z1^3 *);
    if feq o p.jx ws.t2 then
      if feq o p.jy ws.t3 then jpt_dbl c ws p else p.jinf <- true
    else begin
      fsub o ws.t2 ws.t2 p.jx (* h *);
      fsub o ws.t3 ws.t3 p.jy (* r *);
      fmul o p.jz p.jz ws.t2 (* z3 = z1 h *);
      fsqr o ws.t4 ws.t2 (* h^2 *);
      fmul o ws.t5 ws.t4 ws.t2 (* h^3 *);
      fmul o ws.t6 p.jx ws.t4 (* v = x1 h^2 *);
      fsqr o ws.t4 ws.t3;
      fsub o ws.t4 ws.t4 ws.t5 (* r^2 - h^3 *);
      fmuls o ws.t7 ws.t6 2;
      fsub o p.jx ws.t4 ws.t7 (* x3 *);
      fsub o ws.t4 ws.t6 p.jx;
      fmul o ws.t6 ws.t3 ws.t4 (* r (v - x3) *);
      fmul o ws.t4 p.jy ws.t5 (* y1 h^3 *);
      fsub o p.jy ws.t6 ws.t4
    end
  end

(* --- Scalar multiplication ----------------------------------------------- *)

(* Width-w NAF recoding, least significant digit first: digits are zero or
   odd in [-(2^w - 1), 2^w - 1], with at least w zeros after each nonzero
   digit, so a b-bit scalar needs ~b/(w+1) point additions.

   The scalar's bits are copied once into a scratch bit array and the
   recoding runs entirely on native ints: a negative digit clears its
   window and propagates a +1 carry upward, instead of re-materialising
   the shrinking scalar as a fresh [Bignum.t] per bit (~300 short-lived
   allocations per 256-bit scalar on the old path). *)
let wnaf_digits ~w k =
  let nbits = Bignum.num_bits k in
  let digits = Array.make (nbits + 2) 0 in
  (* Room above the top bit: the carry can extend the scalar by one bit,
     and windows read w bits past the current position. *)
  let bits = Array.make (nbits + w + 2) 0 in
  for i = 0 to nbits - 1 do
    bits.(i) <- (if Bignum.test_bit k i then 1 else 0)
  done;
  let half = 1 lsl w in
  let full = 1 lsl (w + 1) in
  let top = ref (nbits - 1) in
  let pos = ref 0 in
  let len = ref 0 in
  while !pos <= !top do
    (if bits.(!pos) = 0 then digits.(!len) <- 0
     else begin
       let d = ref 0 in
       for j = w downto 0 do
         d := (!d lsl 1) lor bits.(!pos + j)
       done;
       let dv = !d in
       for j = 0 to w do
         bits.(!pos + j) <- 0
       done;
       if dv >= half then begin
         (* Centered residue dv - 2^(w+1): subtracting it adds 2^(w+1)
            at [pos], i.e. a carry entering at [pos + w + 1]. *)
         let i = ref (!pos + w + 1) in
         while !i <= !top && bits.(!i) = 1 do
           bits.(!i) <- 0;
           incr i
         done;
         bits.(!i) <- 1;
         if !i > !top then top := !i;
         digits.(!len) <- dv - full
       end
       else begin
         (* The window held the remaining top bits: nothing left above. *)
         if !pos + w >= !top then top := !pos;
         digits.(!len) <- dv
       end
     end);
    incr len;
    incr pos
  done;
  (digits, !len)

let wnaf_width kbits =
  if kbits <= 16 then 2 else if kbits <= 64 then 3 else if kbits <= 160 then 4 else 5

(* acc <- k * p over the workspace backend. [p] is only read. *)
let jac_scalar_mult_ws c ws k p acc =
  if Bignum.is_zero k || p.jinf then acc.jinf <- true
  else begin
    let o = ws.o in
    let w = wnaf_width (Bignum.num_bits k) in
    (* Odd multiples P, 3P, 5P, …, (2^w - 1)P. *)
    let tbl = Array.init (1 lsl (w - 1)) (fun _ -> jpt_make o) in
    jpt_blit tbl.(0) p;
    let p2 = jpt_make o in
    jpt_blit p2 p;
    jpt_dbl c ws p2;
    for i = 1 to Array.length tbl - 1 do
      jpt_blit tbl.(i) tbl.(i - 1);
      jpt_add c ws tbl.(i) p2
    done;
    let digits, len = wnaf_digits ~w k in
    acc.jinf <- true;
    for i = len - 1 downto 0 do
      jpt_dbl c ws acc;
      let d = digits.(i) in
      if d > 0 then jpt_add c ws acc tbl.((d - 1) / 2)
      else if d < 0 then begin
        (* View the table entry through the negated-y scratch: no copy,
           no allocation. *)
        let q = tbl.((-d - 1) / 2) in
        let tneg = ws.tneg in
        fneg o ws.nbuf q.jy;
        tneg.jx <- q.jx;
        tneg.jy <- ws.nbuf;
        tneg.jz <- q.jz;
        tneg.jinf <- q.jinf;
        jpt_add c ws acc tneg
      end
    done
  end

let scalar_mult c k p =
  Obs.Kernel.(bump ec_scalar_mult);
  match p with
  | Inf -> Inf
  | Affine _ ->
      let ws = make_ws c in
      let pj = jpt_make ws.o in
      jpt_of_point ws pj p;
      let acc = jpt_make ws.o in
      jac_scalar_mult_ws c ws k pj acc;
      point_of_jpt ws acc

(* acc <- k * G via the fixed-base comb. *)
let jac_scalar_mult_base_ws c ws k acc =
  let { cw; cd; ctable } = c.comb in
  if Bignum.is_zero k then acc.jinf <- true
  else if Bignum.num_bits k > cw * cd then begin
    (* Wider than the comb covers (scalars beyond the group order);
       correctness over speed. *)
    let g = jpt_make ws.o in
    jpt_of_point ws g (Affine (c.gx, c.gy));
    jac_scalar_mult_ws c ws k g acc
  end
  else begin
    acc.jinf <- true;
    for i = cd - 1 downto 0 do
      jpt_dbl c ws acc;
      let j = ref 0 in
      for t = cw - 1 downto 0 do
        j := (!j lsl 1) lor (if Bignum.test_bit k (i + (t * cd)) then 1 else 0)
      done;
      if !j <> 0 then
        match ctable.(!j) with
        | Some (ax, ay) -> jpt_add_affine c ws acc ax ay
        | None -> () (* entry is the point at infinity; adding it is a no-op *)
    done
  end

let scalar_mult_base c k =
  Obs.Kernel.(bump ec_scalar_mult_base);
  let ws = make_ws c in
  let acc = jpt_make ws.o in
  jac_scalar_mult_base_ws c ws k acc;
  point_of_jpt ws acc

let scalar_mult_base_add c u1 u2 q =
  let ws = make_ws c in
  let acc = jpt_make ws.o in
  jac_scalar_mult_base_ws c ws u1 acc;
  let qj = jpt_make ws.o in
  jpt_of_point ws qj q;
  let acc2 = jpt_make ws.o in
  jac_scalar_mult_ws c ws u2 qj acc2;
  jpt_add c ws acc acc2;
  point_of_jpt ws acc

(* --- Curve construction --------------------------------------------------- *)

(* Five teeth: 2^5 = 32 affine table entries per curve, ~bits/5 doublings
   and at most as many mixed additions per fixed-base multiplication. The
   one-time build cost (31 additions + 31 inversions) is trivial even for
   the small simulation curves generated in bulk. *)
let comb_teeth = 5

let build_comb c =
  let nbits = max 1 (Bignum.num_bits c.n) in
  let w = comb_teeth in
  let d = (nbits + w - 1) / w in
  let g = to_jac c (Affine (c.gx, c.gy)) in
  (* rows.(k) = 2^(k·d) · G *)
  let rows = Array.make w g in
  for k = 1 to w - 1 do
    let x = ref rows.(k - 1) in
    for _ = 1 to d do
      x := jac_double c !x
    done;
    rows.(k) <- !x
  done;
  let tbl = Array.make (1 lsl w) (jac_inf c) in
  for j = 1 to (1 lsl w) - 1 do
    let low = j land -j in
    let k = ref 0 in
    let v = ref low in
    while !v > 1 do
      v := !v lsr 1;
      incr k
    done;
    tbl.(j) <- (if j = low then rows.(!k) else jac_add c tbl.(j - low) rows.(!k))
  done;
  let ctable =
    Array.map
      (fun jp ->
        if jac_is_inf jp then None
        else begin
          let f = c.fctx in
          let zinv = F.inv f jp.z in
          let zinv2 = F.sqr f zinv in
          let ax = F.mul f jp.x zinv2 in
          let ay = F.mul f jp.y (F.mul f zinv2 zinv) in
          (* Store in the curve's ladder backend representation. *)
          if c.use_p256 then
            Some
              ( P256_field.of_bignum (F.to_bignum f ax),
                P256_field.of_bignum (F.to_bignum f ay) )
          else Some (ax, ay)
        end)
      tbl
  in
  { cw = w; cd = d; ctable }

let make_curve ~name ~p ~a ~b ~gx ~gy ~n ~h =
  let fctx = F.create p in
  let a_fe = F.of_bignum fctx a in
  let c0 =
    {
      name;
      fctx;
      a = a_fe;
      b = F.of_bignum fctx b;
      a_is_minus3 = Bignum.equal a (Bignum.sub_int p 3);
      use_p256 = Bignum.equal p P256_field.modulus;
      gx;
      gy;
      n;
      h;
      n_mont = lazy (Bignum.mont_of_modulus n);
      comb = { cw = 0; cd = 0; ctable = [||] };
    }
  in
  { c0 with comb = build_comb c0 }

(* Inverse modulo the (prime) group order, with a cached Montgomery
   context — ECDSA calls this once per signature and verification. *)
let mod_order_inverse c (a : Bignum.t) =
  let a = Bignum.rem a c.n in
  if Bignum.is_zero a then invalid_arg "Ec.mod_order_inverse: zero";
  Bignum.pow_mod_ctx (Lazy.force c.n_mont) a (Bignum.sub c.n Bignum.two)

(* NIST P-256 (secp256r1) domain parameters; the test suite validates them
   structurally (base point on curve, n * G = infinity, p and n prime). *)
let p256 =
  let p = Bignum.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff" in
  make_curve ~name:"secp256r1" ~p
    ~a:(Bignum.sub_int p 3)
    ~b:(Bignum.of_hex "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b")
    ~gx:(Bignum.of_hex "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296")
    ~gy:(Bignum.of_hex "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5")
    ~n:(Bignum.of_hex "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")
    ~h:1

let on_curve c = function
  | Inf -> true
  | Affine (x, y) ->
      let fctx = c.fctx in
      let xf = F.of_bignum fctx x and yf = F.of_bignum fctx y in
      let lhs = F.sqr fctx yf in
      let rhs = F.add fctx (F.mul fctx (F.sqr fctx xf) xf) (F.add fctx (F.mul fctx c.a xf) c.b) in
      F.equal lhs rhs

let add c p q = of_jac c (jac_add c (to_jac c p) (to_jac c q))
let double c p = of_jac c (jac_double c (to_jac c p))

let neg c = function
  | Inf -> Inf
  | Affine (_, y) as pt when Bignum.is_zero y -> pt (* 2-torsion: its own inverse *)
  | Affine (x, y) -> Affine (x, Bignum.sub (curve_p c) y)

(* --- Seed-era reference kernel --------------------------------------------
   The pre-optimization bit-at-a-time double-and-add, retained verbatim:
   the property suite asserts the wNAF and comb paths agree with it, and
   the bench harness reports speedups against it. Do not "optimize". *)

module Reference = struct
  let scalar_mult c k p =
    if Bignum.is_zero k then Inf
    else begin
      let base = to_jac c p in
      let acc = ref (jac_inf c) in
      for i = Bignum.num_bits k - 1 downto 0 do
        acc := jac_double c !acc;
        if Bignum.test_bit k i then acc := jac_add c !acc base
      done;
      of_jac c !acc
    end

  let scalar_mult_base c k = scalar_mult c k (base_point c)
end

(* --- Small-curve generation ----------------------------------------------
   For p = 4q - 1 with p, q prime (so p = 3 mod 4), the curve
   y^2 = x^3 + x over F_p is supersingular with exactly p + 1 = 4q points.
   Clearing the cofactor 4 from any point lands in a subgroup of prime
   order q. Square roots use z^((p+1)/4), valid because p = 3 mod 4. *)
let generate_small_cache : (int * string, curve) Hashtbl.t = Hashtbl.create 8

let generate_small_uncached ~bits ~seed =
  if bits < 24 || bits > 128 then invalid_arg "Ec.generate_small: bits out of range";
  let rng = Drbg.create ~seed:(Printf.sprintf "ec-curve:%s:%d" seed bits) in
  let rec find_p () =
    let raw = Bignum.of_bytes_be (Drbg.generate rng ((bits + 7) / 8)) in
    let q =
      Bignum.add
        (Bignum.rem raw (Bignum.shift_left Bignum.one (bits - 3)))
        (Bignum.shift_left Bignum.one (bits - 3))
    in
    let q = if Bignum.is_even q then Bignum.add_int q 1 else q in
    if not (Dh.is_probably_prime ~rounds:16 ~rng q) then find_p ()
    else
      let p = Bignum.sub_int (Bignum.shift_left q 2) 1 in
      if Dh.is_probably_prime ~rounds:16 ~rng p then (p, q) else find_p ()
  in
  let p, q = find_p () in
  let fctx = F.create p in
  let sqrt_exp = Bignum.shift_right (Bignum.add_int p 1) 2 in
  let legendre_exp = Bignum.shift_right (Bignum.sub_int p 1) 1 in
  let curve_rhs xf = F.add fctx (F.mul fctx (F.sqr fctx xf) xf) xf in
  let name = Printf.sprintf "sim-ss%d(%s)" bits seed in
  let rec find_g () =
    let x = Drbg.bignum_below rng p in
    let xf = F.of_bignum fctx x in
    let z = curve_rhs xf in
    if F.is_zero z then find_g ()
    else if not (F.equal (F.pow fctx z legendre_exp) (F.one fctx)) then find_g ()
    else begin
      let yf = F.pow fctx z sqrt_exp in
      let y = F.to_bignum fctx yf in
      let c =
        make_curve ~name ~p ~a:Bignum.one ~b:Bignum.zero ~gx:(F.to_bignum fctx xf) ~gy:y ~n:q
          ~h:4
      in
      (* Clear the cofactor to land in the order-q subgroup. Rebuild the
         curve around the new base point so the fixed-base comb matches. *)
      match scalar_mult c (Bignum.of_int 4) (Affine (F.to_bignum fctx xf, y)) with
      | Inf -> find_g ()
      | Affine (gx, gy) -> make_curve ~name ~p ~a:Bignum.one ~b:Bignum.zero ~gx ~gy ~n:q ~h:4
    end
  in
  find_g ()

let generate_small ~bits ~seed =
  match Hashtbl.find_opt generate_small_cache (bits, seed) with
  | Some c -> c
  | None ->
      let c = generate_small_uncached ~bits ~seed in
      Hashtbl.replace generate_small_cache (bits, seed) c;
      c

(* --- Key exchange --------------------------------------------------------- *)

type keypair = { curve : curve; priv : Bignum.t; pub : point }

let gen_keypair curve rng =
  let priv = Drbg.bignum_in_group rng curve.n in
  { curve; priv; pub = scalar_mult_base curve priv }

let field_len c = (Bignum.num_bits (curve_p c) + 7) / 8

(* Uncompressed SEC1 point encoding: 0x04 || X || Y. *)
let point_bytes c = function
  | Inf -> "\x00"
  | Affine (x, y) ->
      let l = field_len c in
      "\x04" ^ Bignum.to_bytes_be ~len:l x ^ Bignum.to_bytes_be ~len:l y

let point_of_bytes c s =
  if s = "\x00" then Ok Inf
  else
    let l = field_len c in
    if String.length s <> 1 + (2 * l) || s.[0] <> '\x04' then Error "ec: bad point encoding"
    else
      let x = Bignum.of_bytes_be (String.sub s 1 l) in
      let y = Bignum.of_bytes_be (String.sub s (1 + l) l) in
      let pt = Affine (x, y) in
      if on_curve c pt then Ok pt else Error "ec: point not on curve"

let public_bytes kp = point_bytes kp.curve kp.pub

let shared_secret kp ~peer_pub =
  match peer_pub with
  | Inf -> Error "ec: peer public is infinity"
  | Affine _ when not (on_curve kp.curve peer_pub) -> Error "ec: peer point not on curve"
  | Affine _ -> (
      (* Clear the cofactor: rejects small-subgroup confinement. *)
      let shared = scalar_mult kp.curve kp.priv peer_pub in
      match shared with
      | Inf -> Error "ec: degenerate shared point"
      | Affine (x, _) ->
          (* TLS uses the x-coordinate of the shared point. *)
          Ok (Bignum.to_bytes_be ~len:(field_len kp.curve) x))
