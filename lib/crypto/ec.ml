(* Elliptic-curve groups in short Weierstrass form y^2 = x^3 + ax + b over
   a prime field, with Jacobian-coordinate point arithmetic.

   Two kinds of curves are provided, mirroring {!Dh}: [p256] is the real
   NIST P-256 curve (the dominant TLS ECDHE curve in 2016), used by tests,
   examples and benches; [generate_small ~bits ~seed] deterministically
   builds a small supersingular curve (y^2 = x^3 + x over p = 4q - 1 with
   q prime, group order 4q) so simulation sweeps can run millions of
   handshakes. Both are real EC groups exercising the same code path; the
   small curves' cryptographic weakness (MOV) is irrelevant to the
   measurements, as discussed in DESIGN.md.

   Scalar multiplication is the campaign's hottest kernel (one or two per
   simulated handshake), so it stays entirely in Jacobian coordinates:
   [scalar_mult] recodes the scalar in width-w NAF against a table of odd
   multiples, and [scalar_mult_base] walks a per-curve fixed-base comb of
   affine points (built once in [make_curve]) with mixed additions. The
   seed-era double-and-add loop survives in {!Reference} as the semantic
   baseline for property tests and the bench harness.

   Arithmetic is not constant-time; this library measures protocol
   behaviour, it does not defend live traffic. *)

module F = Bignum.Field

type curve = {
  name : string;
  fctx : F.ctx;
  a : F.fe;
  b : F.fe;
  a_is_minus3 : bool;
  gx : Bignum.t;
  gy : Bignum.t;
  n : Bignum.t; (* order of the base point *)
  h : int; (* cofactor *)
  n_mont : Bignum.mont Lazy.t; (* cached context for mod-n arithmetic (ECDSA) *)
  comb : comb; (* fixed-base comb for [scalar_mult_base], built eagerly *)
}

(* Lim–Lee comb over the base point: [ctable.(j)] is the affine form of
   Σ_{k ∈ bits j} 2^(k·cd) · G ([None] for the point at infinity, which a
   tooth pattern can hit when the implied scalar is a multiple of n).
   Affine entries make every comb addition a mixed addition. *)
and comb = { cw : int; cd : int; ctable : (F.fe * F.fe) option array }

type point = Inf | Affine of Bignum.t * Bignum.t

let curve_name c = c.name
let curve_p c = F.modulus c.fctx
let curve_order c = c.n
let base_point c = Affine (c.gx, c.gy)

(* --- Jacobian arithmetic -------------------------------------------------
   (X, Y, Z) represents affine (X/Z^2, Y/Z^3); Z = 0 is infinity. *)

type jac = { x : F.fe; y : F.fe; z : F.fe }

let jac_inf c = { x = F.one c.fctx; y = F.one c.fctx; z = F.zero c.fctx }
let jac_is_inf j = F.is_zero j.z

let to_jac c = function
  | Inf -> jac_inf c
  | Affine (x, y) ->
      { x = F.of_bignum c.fctx x; y = F.of_bignum c.fctx y; z = F.one c.fctx }

let of_jac c j =
  if jac_is_inf j then Inf
  else begin
    let f = c.fctx in
    let zinv = F.inv f j.z in
    let zinv2 = F.sqr f zinv in
    let x = F.mul f j.x zinv2 in
    let y = F.mul f j.y (F.mul f zinv2 zinv) in
    Affine (F.to_bignum f x, F.to_bignum f y)
  end

let jac_neg c j = if jac_is_inf j then j else { j with y = F.neg c.fctx j.y }

let jac_double c j =
  if jac_is_inf j || F.is_zero j.y then jac_inf c
  else begin
    let f = c.fctx in
    let y2 = F.sqr f j.y in
    let s = F.mul_small f (F.mul f j.x y2) 4 in
    let m =
      if c.a_is_minus3 then begin
        (* 3(X - Z^2)(X + Z^2) *)
        let z2 = F.sqr f j.z in
        F.mul_small f (F.mul f (F.sub f j.x z2) (F.add f j.x z2)) 3
      end
      else begin
        let x2 = F.sqr f j.x in
        let z4 = F.sqr f (F.sqr f j.z) in
        F.add f (F.mul_small f x2 3) (F.mul f c.a z4)
      end
    in
    let x' = F.sub f (F.sqr f m) (F.mul_small f s 2) in
    let y' = F.sub f (F.mul f m (F.sub f s x')) (F.mul_small f (F.sqr f y2) 8) in
    let z' = F.mul_small f (F.mul f j.y j.z) 2 in
    { x = x'; y = y'; z = z' }
  end

let jac_add c p q =
  if jac_is_inf p then q
  else if jac_is_inf q then p
  else begin
    let f = c.fctx in
    let z12 = F.sqr f p.z and z2'2 = F.sqr f q.z in
    let u1 = F.mul f p.x z2'2 and u2 = F.mul f q.x z12 in
    let s1 = F.mul f p.y (F.mul f z2'2 q.z) and s2 = F.mul f q.y (F.mul f z12 p.z) in
    if F.equal u1 u2 then
      if F.equal s1 s2 then jac_double c p else jac_inf c
    else begin
      let h = F.sub f u2 u1 in
      let r = F.sub f s2 s1 in
      let h2 = F.sqr f h in
      let h3 = F.mul f h2 h in
      let u1h2 = F.mul f u1 h2 in
      let x3 = F.sub f (F.sub f (F.sqr f r) h3) (F.mul_small f u1h2 2) in
      let y3 = F.sub f (F.mul f r (F.sub f u1h2 x3)) (F.mul f s1 h3) in
      let z3 = F.mul f h (F.mul f p.z q.z) in
      { x = x3; y = y3; z = z3 }
    end
  end

(* Mixed addition p + (qx, qy) with the second operand affine (Z = 1):
   saves four multiplications and a squaring over [jac_add]; it is what
   makes the comb's affine table pay. *)
let jac_add_affine c p ((qx, qy) : F.fe * F.fe) =
  if jac_is_inf p then { x = qx; y = qy; z = F.one c.fctx }
  else begin
    let f = c.fctx in
    let z2 = F.sqr f p.z in
    let u2 = F.mul f qx z2 in
    let s2 = F.mul f qy (F.mul f z2 p.z) in
    if F.equal p.x u2 then
      if F.equal p.y s2 then jac_double c p else jac_inf c
    else begin
      let h = F.sub f u2 p.x in
      let r = F.sub f s2 p.y in
      let h2 = F.sqr f h in
      let h3 = F.mul f h2 h in
      let v = F.mul f p.x h2 in
      let x3 = F.sub f (F.sub f (F.sqr f r) h3) (F.mul_small f v 2) in
      let y3 = F.sub f (F.mul f r (F.sub f v x3)) (F.mul f p.y h3) in
      { x = x3; y = y3; z = F.mul f p.z h }
    end
  end

(* --- Scalar multiplication ----------------------------------------------- *)

(* Low [bits] bits of [k] as an int; bits <= 6 in practice. *)
let low_bits k bits =
  let v = ref 0 in
  for i = bits - 1 downto 0 do
    v := (!v lsl 1) lor (if Bignum.test_bit k i then 1 else 0)
  done;
  !v

(* Width-w NAF recoding, least significant digit first: digits are zero or
   odd in [-(2^w - 1), 2^w - 1], with at least w zeros after each nonzero
   digit, so a b-bit scalar needs ~b/(w+1) point additions. *)
let wnaf_digits ~w k =
  let digits = Array.make (Bignum.num_bits k + 2) 0 in
  let len = ref 0 in
  let half = 1 lsl w in
  let full = 1 lsl (w + 1) in
  let k = ref k in
  while not (Bignum.is_zero !k) do
    let dig =
      if Bignum.test_bit !k 0 then begin
        let d = low_bits !k (w + 1) in
        if d >= half then begin
          (* Centered residue d - 2^(w+1): subtracting it adds to k. *)
          k := Bignum.add_int !k (full - d);
          d - full
        end
        else begin
          k := Bignum.sub_int !k d;
          d
        end
      end
      else 0
    in
    digits.(!len) <- dig;
    incr len;
    k := Bignum.shift_right !k 1
  done;
  (digits, !len)

let wnaf_width kbits = if kbits <= 16 then 2 else if kbits <= 64 then 3 else 4

let jac_scalar_mult c k p =
  if Bignum.is_zero k || jac_is_inf p then jac_inf c
  else begin
    let w = wnaf_width (Bignum.num_bits k) in
    (* Odd multiples P, 3P, 5P, …, (2^w - 1)P. *)
    let tbl = Array.make (1 lsl (w - 1)) p in
    let p2 = jac_double c p in
    for i = 1 to Array.length tbl - 1 do
      tbl.(i) <- jac_add c tbl.(i - 1) p2
    done;
    let digits, len = wnaf_digits ~w k in
    let acc = ref (jac_inf c) in
    for i = len - 1 downto 0 do
      acc := jac_double c !acc;
      let d = digits.(i) in
      if d > 0 then acc := jac_add c !acc tbl.((d - 1) / 2)
      else if d < 0 then acc := jac_add c !acc (jac_neg c tbl.((-d - 1) / 2))
    done;
    !acc
  end

let scalar_mult c k p =
  Obs.Kernel.(bump ec_scalar_mult);
  of_jac c (jac_scalar_mult c k (to_jac c p))

let jac_scalar_mult_base c k =
  let { cw; cd; ctable } = c.comb in
  if Bignum.is_zero k then jac_inf c
  else if Bignum.num_bits k > cw * cd then
    (* Wider than the comb covers (scalars beyond the group order);
       correctness over speed. *)
    jac_scalar_mult c k (to_jac c (base_point c))
  else begin
    let acc = ref (jac_inf c) in
    for i = cd - 1 downto 0 do
      acc := jac_double c !acc;
      let j = ref 0 in
      for t = cw - 1 downto 0 do
        j := (!j lsl 1) lor (if Bignum.test_bit k (i + (t * cd)) then 1 else 0)
      done;
      if !j <> 0 then
        match ctable.(!j) with
        | Some ap -> acc := jac_add_affine c !acc ap
        | None -> () (* entry is the point at infinity; adding it is a no-op *)
    done;
    !acc
  end

let scalar_mult_base c k =
  Obs.Kernel.(bump ec_scalar_mult_base);
  of_jac c (jac_scalar_mult_base c k)

let scalar_mult_base_add c u1 u2 q =
  of_jac c (jac_add c (jac_scalar_mult_base c u1) (jac_scalar_mult c u2 (to_jac c q)))

(* --- Curve construction --------------------------------------------------- *)

(* Five teeth: 2^5 = 32 affine table entries per curve, ~bits/5 doublings
   and at most as many mixed additions per fixed-base multiplication. The
   one-time build cost (31 additions + 31 inversions) is trivial even for
   the small simulation curves generated in bulk. *)
let comb_teeth = 5

let build_comb c =
  let nbits = max 1 (Bignum.num_bits c.n) in
  let w = comb_teeth in
  let d = (nbits + w - 1) / w in
  let g = to_jac c (Affine (c.gx, c.gy)) in
  (* rows.(k) = 2^(k·d) · G *)
  let rows = Array.make w g in
  for k = 1 to w - 1 do
    let x = ref rows.(k - 1) in
    for _ = 1 to d do
      x := jac_double c !x
    done;
    rows.(k) <- !x
  done;
  let tbl = Array.make (1 lsl w) (jac_inf c) in
  for j = 1 to (1 lsl w) - 1 do
    let low = j land -j in
    let k = ref 0 in
    let v = ref low in
    while !v > 1 do
      v := !v lsr 1;
      incr k
    done;
    tbl.(j) <- (if j = low then rows.(!k) else jac_add c tbl.(j - low) rows.(!k))
  done;
  let ctable =
    Array.map
      (fun jp ->
        if jac_is_inf jp then None
        else begin
          let f = c.fctx in
          let zinv = F.inv f jp.z in
          let zinv2 = F.sqr f zinv in
          Some (F.mul f jp.x zinv2, F.mul f jp.y (F.mul f zinv2 zinv))
        end)
      tbl
  in
  { cw = w; cd = d; ctable }

let make_curve ~name ~p ~a ~b ~gx ~gy ~n ~h =
  let fctx = F.create p in
  let a_fe = F.of_bignum fctx a in
  let c0 =
    {
      name;
      fctx;
      a = a_fe;
      b = F.of_bignum fctx b;
      a_is_minus3 = Bignum.equal a (Bignum.sub_int p 3);
      gx;
      gy;
      n;
      h;
      n_mont = lazy (Bignum.mont_of_modulus n);
      comb = { cw = 0; cd = 0; ctable = [||] };
    }
  in
  { c0 with comb = build_comb c0 }

(* Inverse modulo the (prime) group order, with a cached Montgomery
   context — ECDSA calls this once per signature and verification. *)
let mod_order_inverse c (a : Bignum.t) =
  let a = Bignum.rem a c.n in
  if Bignum.is_zero a then invalid_arg "Ec.mod_order_inverse: zero";
  Bignum.pow_mod_ctx (Lazy.force c.n_mont) a (Bignum.sub c.n Bignum.two)

(* NIST P-256 (secp256r1) domain parameters; the test suite validates them
   structurally (base point on curve, n * G = infinity, p and n prime). *)
let p256 =
  let p = Bignum.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff" in
  make_curve ~name:"secp256r1" ~p
    ~a:(Bignum.sub_int p 3)
    ~b:(Bignum.of_hex "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b")
    ~gx:(Bignum.of_hex "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296")
    ~gy:(Bignum.of_hex "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5")
    ~n:(Bignum.of_hex "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")
    ~h:1

let on_curve c = function
  | Inf -> true
  | Affine (x, y) ->
      let fctx = c.fctx in
      let xf = F.of_bignum fctx x and yf = F.of_bignum fctx y in
      let lhs = F.sqr fctx yf in
      let rhs = F.add fctx (F.mul fctx (F.sqr fctx xf) xf) (F.add fctx (F.mul fctx c.a xf) c.b) in
      F.equal lhs rhs

let add c p q = of_jac c (jac_add c (to_jac c p) (to_jac c q))
let double c p = of_jac c (jac_double c (to_jac c p))

let neg c = function
  | Inf -> Inf
  | Affine (_, y) as pt when Bignum.is_zero y -> pt (* 2-torsion: its own inverse *)
  | Affine (x, y) -> Affine (x, Bignum.sub (curve_p c) y)

(* --- Seed-era reference kernel --------------------------------------------
   The pre-optimization bit-at-a-time double-and-add, retained verbatim:
   the property suite asserts the wNAF and comb paths agree with it, and
   the bench harness reports speedups against it. Do not "optimize". *)

module Reference = struct
  let scalar_mult c k p =
    if Bignum.is_zero k then Inf
    else begin
      let base = to_jac c p in
      let acc = ref (jac_inf c) in
      for i = Bignum.num_bits k - 1 downto 0 do
        acc := jac_double c !acc;
        if Bignum.test_bit k i then acc := jac_add c !acc base
      done;
      of_jac c !acc
    end

  let scalar_mult_base c k = scalar_mult c k (base_point c)
end

(* --- Small-curve generation ----------------------------------------------
   For p = 4q - 1 with p, q prime (so p = 3 mod 4), the curve
   y^2 = x^3 + x over F_p is supersingular with exactly p + 1 = 4q points.
   Clearing the cofactor 4 from any point lands in a subgroup of prime
   order q. Square roots use z^((p+1)/4), valid because p = 3 mod 4. *)
let generate_small_cache : (int * string, curve) Hashtbl.t = Hashtbl.create 8

let generate_small_uncached ~bits ~seed =
  if bits < 24 || bits > 128 then invalid_arg "Ec.generate_small: bits out of range";
  let rng = Drbg.create ~seed:(Printf.sprintf "ec-curve:%s:%d" seed bits) in
  let rec find_p () =
    let raw = Bignum.of_bytes_be (Drbg.generate rng ((bits + 7) / 8)) in
    let q =
      Bignum.add
        (Bignum.rem raw (Bignum.shift_left Bignum.one (bits - 3)))
        (Bignum.shift_left Bignum.one (bits - 3))
    in
    let q = if Bignum.is_even q then Bignum.add_int q 1 else q in
    if not (Dh.is_probably_prime ~rounds:16 ~rng q) then find_p ()
    else
      let p = Bignum.sub_int (Bignum.shift_left q 2) 1 in
      if Dh.is_probably_prime ~rounds:16 ~rng p then (p, q) else find_p ()
  in
  let p, q = find_p () in
  let fctx = F.create p in
  let sqrt_exp = Bignum.shift_right (Bignum.add_int p 1) 2 in
  let legendre_exp = Bignum.shift_right (Bignum.sub_int p 1) 1 in
  let curve_rhs xf = F.add fctx (F.mul fctx (F.sqr fctx xf) xf) xf in
  let name = Printf.sprintf "sim-ss%d(%s)" bits seed in
  let rec find_g () =
    let x = Drbg.bignum_below rng p in
    let xf = F.of_bignum fctx x in
    let z = curve_rhs xf in
    if F.is_zero z then find_g ()
    else if not (F.equal (F.pow fctx z legendre_exp) (F.one fctx)) then find_g ()
    else begin
      let yf = F.pow fctx z sqrt_exp in
      let y = F.to_bignum fctx yf in
      let c =
        make_curve ~name ~p ~a:Bignum.one ~b:Bignum.zero ~gx:(F.to_bignum fctx xf) ~gy:y ~n:q
          ~h:4
      in
      (* Clear the cofactor to land in the order-q subgroup. Rebuild the
         curve around the new base point so the fixed-base comb matches. *)
      match scalar_mult c (Bignum.of_int 4) (Affine (F.to_bignum fctx xf, y)) with
      | Inf -> find_g ()
      | Affine (gx, gy) -> make_curve ~name ~p ~a:Bignum.one ~b:Bignum.zero ~gx ~gy ~n:q ~h:4
    end
  in
  find_g ()

let generate_small ~bits ~seed =
  match Hashtbl.find_opt generate_small_cache (bits, seed) with
  | Some c -> c
  | None ->
      let c = generate_small_uncached ~bits ~seed in
      Hashtbl.replace generate_small_cache (bits, seed) c;
      c

(* --- Key exchange --------------------------------------------------------- *)

type keypair = { curve : curve; priv : Bignum.t; pub : point }

let gen_keypair curve rng =
  let priv = Drbg.bignum_in_group rng curve.n in
  { curve; priv; pub = scalar_mult_base curve priv }

let field_len c = (Bignum.num_bits (curve_p c) + 7) / 8

(* Uncompressed SEC1 point encoding: 0x04 || X || Y. *)
let point_bytes c = function
  | Inf -> "\x00"
  | Affine (x, y) ->
      let l = field_len c in
      "\x04" ^ Bignum.to_bytes_be ~len:l x ^ Bignum.to_bytes_be ~len:l y

let point_of_bytes c s =
  if s = "\x00" then Ok Inf
  else
    let l = field_len c in
    if String.length s <> 1 + (2 * l) || s.[0] <> '\x04' then Error "ec: bad point encoding"
    else
      let x = Bignum.of_bytes_be (String.sub s 1 l) in
      let y = Bignum.of_bytes_be (String.sub s (1 + l) l) in
      let pt = Affine (x, y) in
      if on_curve c pt then Ok pt else Error "ec: point not on curve"

let public_bytes kp = point_bytes kp.curve kp.pub

let shared_secret kp ~peer_pub =
  match peer_pub with
  | Inf -> Error "ec: peer public is infinity"
  | Affine _ when not (on_curve kp.curve peer_pub) -> Error "ec: peer point not on curve"
  | Affine _ -> (
      (* Clear the cofactor: rejects small-subgroup confinement. *)
      let shared = scalar_mult kp.curve kp.priv peer_pub in
      match shared with
      | Inf -> Error "ec: degenerate shared point"
      | Affine (x, _) ->
          (* TLS uses the x-coordinate of the shared point. *)
          Ok (Bignum.to_bytes_be ~len:(field_len kp.curve) x))
