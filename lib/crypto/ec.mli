(** Elliptic curves in short Weierstrass form over prime fields, with
    Jacobian-coordinate arithmetic. Provides the real NIST P-256 curve and
    deterministic small supersingular curves for simulation sweeps. Not
    constant-time (this library measures protocol behaviour; it does not
    protect live traffic). *)

type curve
type point = Inf | Affine of Bignum.t * Bignum.t

val curve_name : curve -> string
val curve_p : curve -> Bignum.t
val curve_order : curve -> Bignum.t
val base_point : curve -> point

val make_curve :
  name:string ->
  p:Bignum.t ->
  a:Bignum.t ->
  b:Bignum.t ->
  gx:Bignum.t ->
  gy:Bignum.t ->
  n:Bignum.t ->
  h:int ->
  curve

val p256 : curve
(** NIST P-256 / secp256r1, the dominant TLS ECDHE curve of the study
    period. *)

val generate_small : bits:int -> seed:string -> curve
(** Deterministically build a supersingular curve y² = x³ + x over
    p = 4q − 1 (p, q prime) with base point of prime order q. Small sizes
    (24–128 bits) keep large simulations tractable; see DESIGN.md. *)

val mod_order_inverse : curve -> Bignum.t -> Bignum.t
(** Inverse modulo the (prime) group order, with a cached Montgomery
    context. Raises [Invalid_argument] on zero. *)

val on_curve : curve -> point -> bool
val add : curve -> point -> point -> point
val double : curve -> point -> point

val neg : curve -> point -> point
(** The additive inverse: [Affine (x, p − y)] (points with [y = 0] are
    their own inverse, as is infinity). *)

val scalar_mult : curve -> Bignum.t -> point -> point
(** Width-w NAF double-and-add, entirely in Jacobian coordinates with a
    single affine conversion at the end. *)

val scalar_mult_base : curve -> Bignum.t -> point
(** Multiplication of the base point via the curve's fixed-base comb
    (built once in [make_curve]); scalars wider than the comb covers fall
    back to {!scalar_mult}. *)

val scalar_mult_base_add : curve -> Bignum.t -> Bignum.t -> point -> point
(** [scalar_mult_base_add c u1 u2 q] is [u1·G + u2·Q] with the sum formed
    in Jacobian coordinates, saving an affine conversion (a field
    inversion) per ECDSA verification. *)

(** Seed-era bit-at-a-time double-and-add, retained verbatim as the
    semantic baseline for the property suite and the bench harness. *)
module Reference : sig
  val scalar_mult : curve -> Bignum.t -> point -> point
  val scalar_mult_base : curve -> Bignum.t -> point
end

type keypair

val gen_keypair : curve -> Drbg.t -> keypair

val point_bytes : curve -> point -> string
(** Uncompressed SEC1 encoding [04 || X || Y] ([00] for infinity). *)

val point_of_bytes : curve -> string -> (point, string) result
(** Rejects encodings of points not on the curve. *)

val public_bytes : keypair -> string

val shared_secret : keypair -> peer_pub:point -> (string, string) result
(** The x-coordinate of the shared point, as TLS uses it. Rejects
    off-curve and degenerate peer values. *)
