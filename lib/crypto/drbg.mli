(** Deterministic HMAC-DRBG (NIST SP 800-90A, HMAC-SHA256 variant).

    The only randomness source in the project: seeding it makes every
    simulation and key generation reproducible. *)

type t

val create : seed:string -> t
val of_int_seed : int -> t
val reseed : t -> string -> unit

val generate : t -> int -> string
(** [generate t n] produces [n] pseudorandom bytes. *)

val generate_into : t -> Bytes.t -> pos:int -> len:int -> unit
(** [generate_into t buf ~pos ~len] writes [len] pseudorandom bytes into
    [buf] at [pos] with no intermediate copies. Draws the same stream as
    {!generate}: a [generate_into] of [len] advances the generator state
    exactly as [generate t len] would. Raises [Invalid_argument] if the
    range falls outside [buf]. *)

val fork : t -> label:string -> t
(** Derive an independent child generator; children with distinct labels
    produce independent streams regardless of later draws from the
    parent. *)

val state : t -> string * string
(** The generator's full internal state [(K, V)], two 32-byte strings.
    Snapshot for campaign checkpoints. *)

val restore : state:string * string -> t
(** Rebuild a generator from a {!state} snapshot; the restored generator
    continues the stream exactly where the snapshot was taken. Raises
    [Invalid_argument] unless both components are 32 bytes. *)

val byte : t -> int
val int_below : t -> int -> int
(** Unbiased draw in [\[0, n)]. *)

val int_range : t -> int -> int -> int
(** Unbiased draw in [\[lo, hi\]] (inclusive). *)

val float01 : t -> float
val bool : t -> p:float -> bool
val pick : t -> 'a array -> 'a
val pick_list : t -> 'a list -> 'a
val shuffle : t -> 'a array -> unit

val weighted : t -> (float * 'a) list -> 'a
(** Draw from a discrete distribution of (weight, value) pairs. *)

val exponential : t -> mean:float -> float

val bignum_below : t -> Bignum.t -> Bignum.t
(** Unbiased draw in [\[0, n)]. *)

val bignum_in_group : t -> Bignum.t -> Bignum.t
(** Unbiased draw in [\[1, n-1\]]. *)
