(** HMAC-SHA256 (RFC 2104). *)

val sha256 : key:string -> string -> string
(** [sha256 ~key msg] is the 32-byte HMAC-SHA256 tag. *)

val sha256_parts : key:string -> string list -> string
(** [sha256_parts ~key parts] is [sha256 ~key (String.concat "" parts)]
    without materializing the concatenation. *)

val equal_ct : string -> string -> bool
(** Constant-time equality for MAC tags. *)

val verify : key:string -> msg:string -> tag:string -> bool
