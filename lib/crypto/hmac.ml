(* HMAC-SHA256 (RFC 2104), verified against the RFC 4231 vectors in the
   test suite. *)

let xor_pad key pad =
  String.init Sha256.block_size (fun i ->
      let k = if i < String.length key then Char.code key.[i] else 0 in
      Char.chr (k lxor pad))

(* HMAC over the concatenation of [parts] without materializing it; the
   record layer MACs (sequence || header) and ciphertext as two parts
   instead of copying the whole ciphertext into a fresh string. *)
let sha256_parts ~key parts =
  let key = if String.length key > Sha256.block_size then Sha256.digest key else key in
  let inner = Sha256.digest_list (xor_pad key 0x36 :: parts) in
  Sha256.digest_list [ xor_pad key 0x5c; inner ]

let sha256 ~key msg = sha256_parts ~key [ msg ]

(* Constant-time comparison: MAC checks must not leak a prefix-length
   timing signal. *)
let equal_ct a b =
  String.length a = String.length b
  &&
  let acc = ref 0 in
  String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
  !acc = 0

let verify ~key ~msg ~tag = equal_ct (sha256 ~key msg) tag
