(** Arbitrary-precision unsigned integers (naturals), built from scratch
    because the sealed container has no zarith. Little-endian arrays of
    26-bit limbs; all values are immutable and canonical.

    [pow_mod] uses Montgomery (CIOS) multiplication for odd moduli, which
    covers every (EC)DH group in this project; a cached context
    ({!mont_of_modulus} + {!pow_mod_ctx}) avoids per-call setup on hot
    paths. *)

type t

val zero : t
val one : t
val two : t
val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int_opt : t -> int option
val to_int_exn : t -> int

val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val num_bits : t -> int
(** Position of the highest set bit plus one; [num_bits zero = 0]. *)

val test_bit : t -> int -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** Raises [Invalid_argument] if the result would be negative. *)

val add_int : t -> int -> t
val sub_int : t -> int -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]. Raises [Division_by_zero]. *)

val div : t -> t -> t
val rem : t -> t -> t
val gcd : t -> t -> t

val pow_mod : t -> t -> t -> t
(** [pow_mod a e m] is [a{^e} mod m]. Odd moduli take the sliding-window
    Montgomery path with a dedicated squaring kernel. *)

type mont
(** Cached Montgomery context for a fixed odd modulus. *)

val mont_of_modulus : t -> mont
(** Raises [Invalid_argument] if the modulus is even or zero. *)

val pow_mod_ctx : mont -> t -> t -> t
(** [pow_mod_ctx ctx a e] is [a{^e} mod m] for the context's modulus. *)

type fixed_base
(** A fixed-base comb table: one-time precomputation over a (context,
    base) pair that makes every subsequent exponentiation of that base
    cost ~bits/4 squarings and multiplications instead of ~bits of each.
    Used by {!Dh.gen_keypair}, where the group generator is raised to a
    fresh private exponent on every simulated handshake. *)

val fixed_base : mont -> t -> max_bits:int -> fixed_base
(** [fixed_base ctx g ~max_bits] returns the comb table for [g] covering
    exponents up to [max_bits] bits, building and caching it on [ctx] on
    first use (the cache is keyed by the base value and table geometry,
    and is safe to populate from multiple domains). Raises
    [Invalid_argument] if [max_bits <= 0]. *)

val pow_mod_fixed : fixed_base -> t -> t
(** [pow_mod_fixed fb e] is [g{^e} mod m] for the table's base and
    modulus. Exponents wider than the table covers fall back to
    {!pow_mod_ctx}. *)

(** Seed-era kernels (two-pass CIOS multiply, plain left-to-right
    square-and-multiply), retained verbatim as the semantic baseline for
    the property suite and the bench-regression harness. *)
module Reference : sig
  val pow_mod : t -> t -> t -> t
  val pow_mod_ctx : mont -> t -> t -> t
end

val mod_inverse_prime : t -> t -> t
(** [mod_inverse_prime a p] for prime [p] via Fermat's little theorem.
    Raises [Invalid_argument] if [a mod p = 0]. *)

(** Prime-field elements kept in Montgomery form, so long chains of modular
    multiplications (elliptic-curve point arithmetic) cost one CIOS pass
    each. The modulus must be odd; callers use prime moduli. *)
module Field : sig
  type ctx

  type fe = int array
  (** Montgomery-form limbs. The representation is exposed so {!Ec} can
      dispatch between this generic backend and the specialized
      {!P256_field} one behind a single array-based interface; treat
      values as opaque outside those two modules. *)

  val create : t -> ctx
  val modulus : ctx -> t
  val of_bignum : ctx -> t -> fe
  val to_bignum : ctx -> fe -> t
  val zero : ctx -> fe
  val one : ctx -> fe
  val is_zero : fe -> bool
  val equal : fe -> fe -> bool
  val add : ctx -> fe -> fe -> fe
  val sub : ctx -> fe -> fe -> fe
  val mul : ctx -> fe -> fe -> fe
  val sqr : ctx -> fe -> fe

  val mul_small : ctx -> fe -> int -> fe
  (** Multiply by a small non-negative integer via repeated addition. *)

  val neg : ctx -> fe -> fe

  val inv : ctx -> fe -> fe
  (** Fermat inversion; requires a prime modulus and a nonzero argument. *)

  val pow : ctx -> fe -> t -> fe
end

val of_bytes_be : string -> t
val to_bytes_be : ?len:int -> t -> string
(** Big-endian; zero-padded on the left to [len] when given. Raises
    [Invalid_argument] if the value does not fit in [len] bytes. *)

val of_hex : string -> t
val to_hex : t -> string
val of_decimal : string -> t
val to_decimal : t -> string
val pp : Format.formatter -> t -> unit
