(** Byzantine response synthesis: deterministic hostile-byte generation
    classified by the real codecs. An injected byzantine fault mutates a
    canned valid transcript at a {!Det}-chosen offset and decodes the
    result with the same total parsers the scanner uses; the verdict
    (typed rejection vs. parsed-but-corrupt) picks the fault cause. All
    draws are pure hashes of the key — stateless, worker-count
    invariant, and side-effect free on simulation DRBG streams. *)

val classify : key:string -> Fault.t
(** Always {!Fault.Malformed_response} or {!Fault.Protocol_violation},
    deterministically from [key]. *)

val mutate : key:string -> string -> string
(** The seeded structure-aware mutator (byte flips, truncation,
    zeroed/maximized length runs, garbage splices, version rewrites,
    slice duplication), exposed for the wire fuzzer. Output length never
    exceeds input + 32 bytes. *)

(** What decodes a template's mutated bytes. *)
type target = Handshake_flight | Session_blob | Ticket_blob | Record_stream

val templates : (string * target * string) array
(** Canned valid wire blobs (name, decoding target, bytes): hellos,
    server flights, session state, a sealed ticket, a record stream. *)

val decode : target -> string -> bool
(** Run bytes through the target's total decoder; [true] means the
    bytes parsed (cryptographic-check failures count as parsed). *)

val template_stek : Tls.Stek.t
(** The STEK sealing {!templates}' ticket blob. *)

val find_stek : string -> Tls.Stek.t option
(** Resolver for {!templates}' sealed ticket, exposed for the fuzzer. *)
