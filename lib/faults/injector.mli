(** The deterministic fault schedule: a pure function of (seed,
    endpoint, hostname, virtual time, attempt index). Stateless by
    design — enabling faults perturbs no existing DRBG stream, and
    decisions are identical regardless of query order or worker
    count. *)

type decision =
  | Pass
  | Slow of int  (** handshake succeeds after this many extra seconds *)
  | Fault of Fault.t

type t

val create : ?seed:string -> profile:Profile.t -> Simnet.World.t -> t
(** [seed] defaults to ["faults"]; it namespaces the whole fault
    timeline and is independent of the world seed. *)

val profile : t -> Profile.t

val decide : t -> hostname:string -> time:int -> attempt:int -> decision

val operator_of : t -> hostname:string -> string option
(** The operator serving [hostname], for per-operator accounting
    (circuit breaker); [None] for hostnames outside the world. *)

val endpoint_outage_at : t -> hostname:string -> time:int -> bool
(** Whether the endpoint serving [hostname] is inside a scheduled
    outage window at [time] (exposed for tests and analysis). *)

val outage_epoch : int
(** Outage scheduling granularity in seconds (windows never cross an
    epoch boundary). *)
