(* The measurement-loss taxonomy: every way a probe can fail to yield an
   observation, from names that never resolve to injected network
   faults. Real measurement studies (the paper's §3, the TLS 1.3
   deployment scans) report failures per cause; the scanner records one
   of these on every failed connection and {!Funnel} tallies them per
   scan day. *)

type t =
  | No_such_domain (* name not in the simulated Internet *)
  | No_https (* domain resolves but runs no TLS endpoint *)
  | Connection_refused (* the endpoint's baseline per-connection loss coin *)
  | Connect_timeout (* injected: SYN lost, the handshake never starts *)
  | Tcp_reset (* injected: RST mid-handshake *)
  | Tls_alert (* injected: fatal alert mid-handshake *)
  | Truncated_record (* injected: the stream dies inside a record *)
  | Slow_handshake (* injected latency exceeded the probe deadline *)
  | Endpoint_outage (* whole-endpoint down-window (minutes to hours) *)
  | Malformed_response (* injected: well-framed bytes the codecs reject *)
  | Protocol_violation (* injected: parses cleanly but breaks the protocol *)
  | Worker_crash (* a scanning worker died; the shard's probes were abandoned *)
  | Unknown (* archived row predating failure classification *)

let all =
  [
    No_such_domain;
    No_https;
    Connection_refused;
    Connect_timeout;
    Tcp_reset;
    Tls_alert;
    Truncated_record;
    Slow_handshake;
    Endpoint_outage;
    Malformed_response;
    Protocol_violation;
    Worker_crash;
    Unknown;
  ]

(* CSV tokens: short, stable, and greppable in archived datasets. *)
let to_string = function
  | No_such_domain -> "nxdomain"
  | No_https -> "nohttps"
  | Connection_refused -> "refused"
  | Connect_timeout -> "timeout"
  | Tcp_reset -> "reset"
  | Tls_alert -> "alert"
  | Truncated_record -> "truncated"
  | Slow_handshake -> "slow"
  | Endpoint_outage -> "outage"
  | Malformed_response -> "malformed"
  | Protocol_violation -> "byzantine"
  | Worker_crash -> "crash"
  | Unknown -> "unknown"

let of_string = function
  | "nxdomain" -> Some No_such_domain
  | "nohttps" -> Some No_https
  | "refused" -> Some Connection_refused
  | "timeout" -> Some Connect_timeout
  | "reset" -> Some Tcp_reset
  | "alert" -> Some Tls_alert
  | "truncated" -> Some Truncated_record
  | "slow" -> Some Slow_handshake
  | "outage" -> Some Endpoint_outage
  | "malformed" -> Some Malformed_response
  | "byzantine" -> Some Protocol_violation
  | "crash" -> Some Worker_crash
  | "unknown" -> Some Unknown
  | _ -> None

(* Injected faults are transient by construction — a retry can clear
   them. World-level errors (no such name, no HTTPS, the endpoint's own
   loss coin) are the simulation's ground truth and are never retried. *)
let is_injected = function
  | Connect_timeout | Tcp_reset | Tls_alert | Truncated_record | Slow_handshake
  | Endpoint_outage | Malformed_response | Protocol_violation ->
      true
  | No_such_domain | No_https | Connection_refused | Worker_crash | Unknown -> false

(* The byzantine subset: losses caused by a peer that *answered* but
   answered wrong — what the circuit breaker and the funnel report's
   byzantine row single out from ordinary availability faults. *)
let is_byzantine = function
  | Malformed_response | Protocol_violation -> true
  | _ -> false
