(* Per-operator circuit breaker: an adaptive retry budget for peers that
   keep misbehaving.

   A probe normally gets the full retry budget. Once an operator racks
   up [threshold] consecutive injected-fault failures, the breaker opens
   and the next [cooldown] probes against that operator get a budget of
   one attempt each — enough to notice recovery, cheap enough that a
   persistently byzantine operator can no longer spend
   max_attempts * backoff of campaign time per domain. Any success (or a
   world-level ground-truth failure, which says the *network* answered
   definitively) snaps the breaker closed.

   Determinism: state advances only on [attempts_allowed]/[record]
   calls, which the scan path makes in per-shard probe order. Operators
   never span shards (shards are connectivity-closed), so the
   per-operator call sequence — and therefore every budget decision — is
   identical at any worker count, and checkpoint replay rebuilds the
   same state by re-executing the same sequence. *)

type cell = { mutable consecutive : int; mutable open_left : int }

type t = {
  threshold : int;
  cooldown : int;
  cells : (string, cell) Hashtbl.t;
}

let default_threshold = 5
let default_cooldown = 25

let create ?(threshold = default_threshold) ?(cooldown = default_cooldown) () =
  if threshold <= 0 then invalid_arg "Breaker.create: threshold must be positive";
  if cooldown <= 0 then invalid_arg "Breaker.create: cooldown must be positive";
  { threshold; cooldown; cells = Hashtbl.create 64 }

let cell t operator =
  match Hashtbl.find_opt t.cells operator with
  | Some c -> c
  | None ->
      let c = { consecutive = 0; open_left = 0 } in
      Hashtbl.replace t.cells operator c;
      c

let is_open t ~operator =
  match Hashtbl.find_opt t.cells operator with
  | Some c -> c.open_left > 0
  | None -> false

(* The retry budget for the next probe against [operator]; consumes one
   tick of an open breaker's cooldown, so call it exactly once per
   probe. *)
let attempts_allowed t ~operator ~max_attempts =
  let c = cell t operator in
  if c.open_left > 0 then begin
    c.open_left <- c.open_left - 1;
    1
  end
  else max_attempts

(* Record a probe outcome. Only injected-fault exhaustion counts as a
   breaker failure: a world-level error (NXDOMAIN, no HTTPS, the
   endpoint's own loss coin) is ground truth about the target, not
   evidence the operator is wasting our retries. *)
let record t ~operator outcome =
  let c = cell t operator in
  match outcome with
  | Ok () ->
      c.consecutive <- 0;
      c.open_left <- 0
  | Error fault ->
      if Fault.is_injected fault then begin
        c.consecutive <- c.consecutive + 1;
        if c.consecutive >= t.threshold then c.open_left <- t.cooldown
      end
      else begin
        c.consecutive <- 0;
        c.open_left <- 0
      end
