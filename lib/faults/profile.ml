(* Fault profiles: how unreliable the simulated network is, per
   operator. The paper's §3 funnel loses ~5% of connections between
   "domain in list" and "successful handshake"; a profile decides how
   much of that loss is transient (timeouts, resets — cleared by a
   retry) versus structural (endpoint outage windows that outlast any
   backoff schedule but not the gap to the next daily sweep). Large
   operators (the paper's Cloudflare/Google giants) run tighter ships
   than the tail, so profiles carry per-operator overrides. *)

type rates = {
  timeout_p : float; (* per-attempt: SYN lost *)
  reset_p : float; (* per-attempt: RST mid-handshake *)
  alert_p : float; (* per-attempt: fatal TLS alert *)
  truncated_p : float; (* per-attempt: stream cut inside a record *)
  byzantine_p : float; (* per-attempt: peer answers with hostile bytes *)
  slow_p : float; (* per-attempt: latency draw instead of instant *)
  slow_latency : int * int; (* seconds, min/max, when slow *)
  outage_p : float; (* per 6h epoch: endpoint-wide down-window *)
  outage_duration : int * int; (* seconds, min/max *)
}

type t = {
  name : string;
  default_rates : rates;
  per_operator : (string * rates) list;
}

let zero_rates =
  {
    timeout_p = 0.0;
    reset_p = 0.0;
    alert_p = 0.0;
    truncated_p = 0.0;
    byzantine_p = 0.0;
    slow_p = 0.0;
    slow_latency = (1, 1);
    outage_p = 0.0;
    outage_duration = (0, 0);
  }

(* No injected faults at all: the world's own ep_failure_rate coin is
   the only loss source, and every probe makes exactly one attempt worth
   of fault decisions (all Pass). *)
let none = { name = "none"; default_rates = zero_rates; per_operator = [] }

(* Moderate, §3-plausible loss. Transient rates sum to ~4.5%, so with
   three attempts almost everything recovers; outage windows (~2% of 6h
   epochs, 10–90 minutes) are what actually shows up as daily losses. *)
let default_rates_tail =
  {
    timeout_p = 0.020;
    reset_p = 0.008;
    alert_p = 0.004;
    truncated_p = 0.004;
    byzantine_p = 0.0;
    slow_p = 0.010;
    slow_latency = (5, 45);
    outage_p = 0.020;
    outage_duration = (10 * 60, 90 * 60);
  }

(* The giants: an order of magnitude steadier, and when they do go down
   it is brief. *)
let default_rates_giant =
  {
    timeout_p = 0.002;
    reset_p = 0.001;
    alert_p = 0.0005;
    truncated_p = 0.0005;
    byzantine_p = 0.0;
    slow_p = 0.002;
    slow_latency = (2, 10);
    outage_p = 0.002;
    outage_duration = (60, 10 * 60);
  }

let default =
  {
    name = "default";
    default_rates = default_rates_tail;
    per_operator =
      [ ("cloudflare", default_rates_giant); ("google", default_rates_giant) ];
  }

(* A hostile network for stress-testing the retry machinery: transient
   rates high enough that exhaustion is common, outages long and
   frequent enough that whole daily observations go missing. *)
let flaky =
  {
    name = "flaky";
    default_rates =
      {
        timeout_p = 0.12;
        reset_p = 0.06;
        alert_p = 0.03;
        truncated_p = 0.03;
        byzantine_p = 0.0;
        slow_p = 0.08;
        slow_latency = (10, 120);
        outage_p = 0.08;
        outage_duration = (30 * 60, 4 * 60 * 60);
      };
    per_operator = [];
  }

(* Byzantine peers on top of default-profile weather: a stress profile
   where the tail answers with hostile bytes on ~12% of attempts — high
   enough that retry exhaustion (and so malformed/byzantine funnel
   losses) actually happens at campaign scale, and consecutive-failure
   streaks trip the per-operator circuit breaker in {!Net}. The giants
   misbehave an order of magnitude less, mirroring the percent-scale
   nonconformance the cross-regional studies in PAPERS.md report. *)
let byzantine =
  {
    name = "byzantine";
    default_rates = { default_rates_tail with byzantine_p = 0.12 };
    per_operator =
      [
        ("cloudflare", { default_rates_giant with byzantine_p = 0.012 });
        ("google", { default_rates_giant with byzantine_p = 0.012 });
      ];
  }

let names = [ "none"; "default"; "flaky"; "byzantine" ]

let of_name = function
  | "none" -> Some none
  | "default" -> Some default
  | "flaky" -> Some flaky
  | "byzantine" -> Some byzantine
  | _ -> None

let rates_for t ~operator =
  match List.assoc_opt operator t.per_operator with
  | Some r -> r
  | None -> t.default_rates

let transient_sum r =
  r.timeout_p +. r.reset_p +. r.alert_p +. r.truncated_p +. r.byzantine_p
  +. r.slow_p
