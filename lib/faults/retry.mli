(** Bounded retries with exponential backoff and deterministic jitter,
    accounted on the probe's private attempt clock (the shared scan
    clock never moves during retries). *)

type policy = {
  max_attempts : int;  (** total attempts, first included *)
  base_backoff : int;  (** seconds before the first retry *)
  multiplier : float;
  max_backoff : int;
  deadline : int;  (** give up once cumulative delay exceeds this *)
}

val default : policy
(** 3 attempts, 2s base backoff doubling, 60s deadline. *)

val no_retry : policy

val backoff : policy -> key:string -> attempt:int -> int
(** Seconds to wait after failed [attempt] (0-based): the exponential
    schedule scaled by a deterministic jitter in [0.5, 1.5), at least
    1s. *)
