(* Measurement-loss telemetry: the §3 funnel, live. Every probe records
   its attempt count and outcome here, bucketed by absolute scan day;
   {!Analysis.Funnel_report} renders the result as the paper renders its
   Table "domains in list → connected → trusted" counts.

   Plain mutable counters: each probe owns (or shares, in serial runs) a
   funnel, and parallel campaigns give every shard a private funnel and
   [absorb] them after the join — all sums, so merge order cannot change
   the totals and worker-count invariance survives. *)

type cell = {
  mutable probes : int; (* probe-level operations (one per Probe.connect) *)
  mutable attempts : int; (* connection attempts including retries *)
  mutable retries : int; (* attempts beyond each probe's first *)
  mutable successes : int;
  mutable recovered : int; (* succeeded after at least one faulted attempt *)
  mutable slow : int; (* succeeded on a slow-handshake draw *)
  mutable losses : (Fault.t * int) list; (* per-cause failed probes *)
}

type t = { days : (int, cell) Hashtbl.t }

let create () = { days = Hashtbl.create 64 }

let cell t ~day =
  match Hashtbl.find_opt t.days day with
  | Some c -> c
  | None ->
      let c =
        { probes = 0; attempts = 0; retries = 0; successes = 0; recovered = 0; slow = 0; losses = [] }
      in
      Hashtbl.replace t.days day c;
      c

let bump_loss c f =
  let rec go = function
    | [] -> [ (f, 1) ]
    | (g, n) :: rest when g = f -> (g, n + 1) :: rest
    | kv :: rest -> kv :: go rest
  in
  c.losses <- go c.losses

let record_attempts c ~attempts =
  c.probes <- c.probes + 1;
  c.attempts <- c.attempts + attempts;
  c.retries <- c.retries + max 0 (attempts - 1)

let record_success t ~day ~attempts ~slow =
  let c = cell t ~day in
  record_attempts c ~attempts;
  c.successes <- c.successes + 1;
  if attempts > 1 then c.recovered <- c.recovered + 1;
  if slow then c.slow <- c.slow + 1

let record_failure t ~day ~attempts fault =
  let c = cell t ~day in
  record_attempts c ~attempts;
  bump_loss c fault

(* Merge [src] into [dst]. Sums only, so absorbing shard funnels in any
   order yields identical totals. *)
let absorb dst src =
  Hashtbl.iter
    (fun day (s : cell) ->
      let d = cell dst ~day in
      d.probes <- d.probes + s.probes;
      d.attempts <- d.attempts + s.attempts;
      d.retries <- d.retries + s.retries;
      d.successes <- d.successes + s.successes;
      d.recovered <- d.recovered + s.recovered;
      d.slow <- d.slow + s.slow;
      List.iter (fun (f, n) -> for _ = 1 to n do bump_loss d f done) s.losses)
    src.days

type totals = {
  t_probes : int;
  t_attempts : int;
  t_retries : int;
  t_successes : int;
  t_recovered : int;
  t_slow : int;
  t_losses : (Fault.t * int) list; (* ordered as Fault.all *)
}

let zero_totals =
  {
    t_probes = 0;
    t_attempts = 0;
    t_retries = 0;
    t_successes = 0;
    t_recovered = 0;
    t_slow = 0;
    t_losses = [];
  }

let sort_losses l =
  List.filter_map
    (fun f -> match List.assoc_opt f l with Some n when n > 0 -> Some (f, n) | _ -> None)
    Fault.all

let add_cell acc (c : cell) =
  {
    t_probes = acc.t_probes + c.probes;
    t_attempts = acc.t_attempts + c.attempts;
    t_retries = acc.t_retries + c.retries;
    t_successes = acc.t_successes + c.successes;
    t_recovered = acc.t_recovered + c.recovered;
    t_slow = acc.t_slow + c.slow;
    t_losses =
      List.fold_left
        (fun l (f, n) ->
          let cur = Option.value ~default:0 (List.assoc_opt f l) in
          (f, cur + n) :: List.remove_assoc f l)
        acc.t_losses c.losses;
  }

let finish tot = { tot with t_losses = sort_losses tot.t_losses }

let days t = Hashtbl.fold (fun d _ acc -> d :: acc) t.days [] |> List.sort compare

let day_totals t ~day =
  match Hashtbl.find_opt t.days day with
  | None -> zero_totals
  | Some c -> finish (add_cell zero_totals c)

let totals t =
  finish (Hashtbl.fold (fun _ c acc -> add_cell acc c) t.days zero_totals)

let lost tot =
  List.fold_left (fun acc (_, n) -> acc + n) 0 tot.t_losses

(* --- Checkpoint serialization ------------------------------------------------ *)

(* A funnel snapshot travels inside campaign checkpoints so a resumed
   run reports the same loss table as an uninterrupted one. The format
   is deterministic (days sorted, losses in [Fault.all] order) so equal
   funnels always serialize to equal bytes. *)

let to_lines t =
  List.concat_map
    (fun day ->
      let c = Hashtbl.find t.days day in
      Printf.sprintf "cell %d %d %d %d %d %d %d" day c.probes c.attempts c.retries c.successes
        c.recovered c.slow
      :: List.map
           (fun (f, n) -> Printf.sprintf "loss %d %s %d" day (Fault.to_string f) n)
           (sort_losses c.losses))
    (days t)

let of_lines lines =
  let t = create () in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec go = function
    | [] -> Ok t
    | line :: rest -> (
        match String.split_on_char ' ' line with
        | [ "cell"; day; probes; attempts; retries; successes; recovered; slow ] -> (
            match
              List.map int_of_string_opt [ day; probes; attempts; retries; successes; recovered; slow ]
            with
            | [ Some day; Some probes; Some attempts; Some retries; Some successes;
                Some recovered; Some slow ] ->
                let c = cell t ~day in
                c.probes <- probes;
                c.attempts <- attempts;
                c.retries <- retries;
                c.successes <- successes;
                c.recovered <- recovered;
                c.slow <- slow;
                go rest
            | _ -> err "funnel: bad cell line %S" line)
        | [ "loss"; day; fault; n ] -> (
            match (int_of_string_opt day, Fault.of_string fault, int_of_string_opt n) with
            | Some day, Some f, Some n when n >= 0 ->
                let c = cell t ~day in
                c.losses <- c.losses @ [ (f, n) ];
                go rest
            | _ -> err "funnel: bad loss line %S" line)
        | _ -> err "funnel: unrecognized line %S" line)
  in
  go lines
