(* The fault layer's randomness: pure functions of (seed, coordinates),
   not a stateful generator. A stateful DRBG stream would make every
   fault decision depend on how many decisions preceded it — so enabling
   faults, changing the retry policy, or re-sharding a parallel campaign
   would shift all later draws. Hashing the coordinates instead makes
   every decision order-independent: the same (seed, endpoint, time,
   attempt) always draws the same value, whichever worker asks first.
   This is the same trick the world uses for daily list membership
   ([in_list_on_day]) and it is what the ISSUE's "dedicated fault-RNG
   stream" requirement needs: the existing handshake DRBG streams are
   never touched. *)

(* First 8 digest bytes as a big-endian 53-bit mantissa in [0,1). *)
let u01 key =
  let h = Crypto.Sha256.digest key in
  let bits = ref 0 in
  for i = 0 to 6 do
    bits := (!bits lsl 8) lor Char.code h.[i]
  done;
  (* 56 bits accumulated; keep 53 so the float conversion is exact. *)
  float_of_int (!bits lsr 3) /. 9007199254740992.0

(* Uniform integer in [lo, hi] (inclusive). *)
let int_in key ~lo ~hi =
  if hi < lo then invalid_arg "Det.int_in: empty range";
  lo + int_of_float (u01 key *. float_of_int (hi - lo + 1))
