(** Fault profiles: per-operator rates for the injected failure
    taxonomy. [none] injects nothing; [default] models §3-plausible
    loss (giants steadier than the tail); [flaky] stress-tests the
    retry machinery. *)

type rates = {
  timeout_p : float;
  reset_p : float;
  alert_p : float;
  truncated_p : float;
  byzantine_p : float;  (** per-attempt: peer answers with hostile bytes *)
  slow_p : float;
  slow_latency : int * int;  (** seconds, min/max *)
  outage_p : float;  (** per 6-hour epoch *)
  outage_duration : int * int;  (** seconds, min/max *)
}

type t = {
  name : string;
  default_rates : rates;
  per_operator : (string * rates) list;
}

val zero_rates : rates
val none : t
val default : t
val flaky : t

val byzantine : t
(** Default-profile weather plus byzantine peers: hostile bytes on ~4%
    of tail attempts, 0.4% for the giants. *)

val names : string list
(** Names accepted by {!of_name}, for CLI docs. *)

val of_name : string -> t option
val rates_for : t -> operator:string -> rates

val transient_sum : rates -> float
(** Total per-attempt probability of any transient (non-outage) fault. *)
