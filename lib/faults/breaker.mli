(** Per-operator circuit breaker: after [threshold] consecutive
    injected-fault failures against one operator, the next [cooldown]
    probes get a single-attempt retry budget instead of the full one.
    Success (or a ground-truth world error) closes the breaker. State
    advances only through {!attempts_allowed}/{!record} in probe order,
    so budgets are deterministic and jobs-invariant. *)

type t

val default_threshold : int
(** 5 consecutive failures arm the breaker. *)

val default_cooldown : int
(** 25 single-attempt probes before the full budget returns. *)

val create : ?threshold:int -> ?cooldown:int -> unit -> t
(** Raises [Invalid_argument] on non-positive parameters. *)

val attempts_allowed : t -> operator:string -> max_attempts:int -> int
(** The retry budget for the next probe against [operator] — 1 while the
    breaker is open (consuming one cooldown tick), [max_attempts]
    otherwise. Call exactly once per probe. *)

val record : t -> operator:string -> (unit, Fault.t) result -> unit
(** Feed a probe outcome back. Injected-fault exhaustion counts toward
    opening; success and world-level errors reset the operator. *)

val is_open : t -> operator:string -> bool
(** Whether [operator]'s breaker is currently open (for tests and
    reports); does not consume a cooldown tick. *)
