(* Byzantine response synthesis: what a misbehaving peer sends back.

   Rather than flipping a coin labelled "malformed", an injected
   byzantine fault *builds the hostile bytes and runs them through the
   real codecs*: a canned valid transcript (hello, server flight,
   session blob, sealed ticket, record stream) is mutated at a
   Det-chosen offset with a Det-chosen operation (byte flip, truncation,
   zeroed or maximized length runs, garbage splice, version rewrite,
   slice duplication), then decoded by the same total parsers the
   scanner uses. The decoder's verdict classifies the fault:

   - the typed parse rejects the bytes      -> {!Fault.Malformed_response}
   - the bytes parse but carry corrupted
     semantics (bad MAC, wrong random,
     stale ticket state)                    -> {!Fault.Protocol_violation}

   Every draw is a pure {!Det} hash of the caller's key, so the schedule
   is stateless like the rest of the injector: no DRBG stream moves, and
   decisions are identical at any worker count. The module doubles as a
   continuous totality check — if a codec ever raised on mutated input,
   every byzantine campaign would crash instead of classifying. *)

module Session = Tls.Session
module Ticket = Tls.Ticket
module Stek = Tls.Stek
module Handshake_msg = Tls.Handshake_msg
module Extension = Tls.Extension
module Record = Tls.Record

(* --- Canned templates ------------------------------------------------------ *)

(* Built once from fixed seeds; the DRBGs here are private to template
   construction and never touch simulation streams. *)

let template_rng label = Crypto.Drbg.create ~seed:("byzantine-template|" ^ label)

let template_stek =
  Stek.derive ~secret:"byzantine-template-stek" ~period:(14 * 3600) ~now:86400

let find_stek name =
  if String.equal name (Stek.key_name template_stek) then Some template_stek else None

let template_session =
  let rng = template_rng "session" in
  Session.make
    ~id:(Crypto.Drbg.generate rng Tls.Types.session_id_max)
    ~master_secret:(Crypto.Drbg.generate rng Crypto.Prf.master_secret_len)
    ~cipher_suite:Tls.Types.ECDHE_ECDSA_AES128_SHA256 ~established_at:86400

let template_ticket =
  Ticket.seal template_stek (template_rng "ticket") template_session

let msg_bytes msgs = String.concat "" (List.map Handshake_msg.to_bytes msgs)

let template_client_hello =
  let rng = template_rng "ch" in
  msg_bytes
    [
      Handshake_msg.Client_hello
        {
          ch_version = Tls.Types.TLS_1_2;
          ch_random = Crypto.Drbg.generate rng Tls.Types.random_len;
          ch_session_id = "";
          ch_cipher_suites =
            List.map Tls.Types.suite_to_int Tls.Types.all_cipher_suites;
          ch_extensions =
            [
              Extension.Server_name "byzantine.example";
              Extension.Supported_groups [ 29; 23 ];
              Extension.Session_ticket "";
            ];
        };
    ]

let template_server_hello rng =
  Handshake_msg.Server_hello
    {
      sh_version = Tls.Types.TLS_1_2;
      sh_random = Crypto.Drbg.generate rng Tls.Types.random_len;
      sh_session_id = Crypto.Drbg.generate rng Tls.Types.session_id_max;
      sh_cipher_suite = Tls.Types.DHE_ECDSA_AES128_SHA256;
      sh_extensions = [ Extension.Renegotiation_info ];
    }

let template_full_flight =
  let rng = template_rng "full" in
  let group = Crypto.Dh.oakley2 in
  msg_bytes
    [
      template_server_hello rng;
      Handshake_msg.Certificate
        [ Crypto.Drbg.generate rng 200; Crypto.Drbg.generate rng 180 ];
      Handshake_msg.Server_key_exchange
        {
          ske_params =
            Handshake_msg.Ske_dhe
              {
                dh_p = Crypto.Bignum.to_bytes_be (Crypto.Dh.group_p group);
                dh_g = Crypto.Bignum.to_bytes_be (Crypto.Dh.group_g group);
                dh_ys = Crypto.Drbg.generate rng 128;
              };
          ske_signature = Crypto.Drbg.generate rng 64;
        };
      Handshake_msg.Server_hello_done;
    ]

let template_abbreviated_flight =
  let rng = template_rng "abbrev" in
  msg_bytes
    [
      template_server_hello rng;
      Handshake_msg.New_session_ticket
        { nst_lifetime_hint = 28 * 3600; nst_ticket = template_ticket };
      Handshake_msg.Finished (Crypto.Drbg.generate rng Tls.Types.verify_data_len);
    ]

let template_record_stream =
  Record.to_bytes
    (Record.make ~content_type:Tls.Types.Handshake_ct template_abbreviated_flight)
  ^ Record.to_bytes
      (Record.make ~content_type:Tls.Types.Application_data
         (Crypto.Drbg.generate (template_rng "appdata") 256))

(* What decodes a template's mutated bytes. *)
type target = Handshake_flight | Session_blob | Ticket_blob | Record_stream

let templates =
  [|
    ("client-hello", Handshake_flight, template_client_hello);
    ("full-flight", Handshake_flight, template_full_flight);
    ("abbreviated-flight", Handshake_flight, template_abbreviated_flight);
    ("session-blob", Session_blob, Session.to_bytes template_session);
    ("ticket-blob", Ticket_blob, template_ticket);
    ("record-stream", Record_stream, template_record_stream);
  |]

(* --- Mutations ------------------------------------------------------------- *)

(* All offsets and values are Det draws under [key]; every operation
   keeps the output length <= input + 32 bytes, so mutation itself can
   never amplify allocation. *)

let op_count = 7

let mutate ~key s =
  let n = String.length s in
  let sub k = key ^ "|" ^ k in
  let pos limit k = Det.int_in (sub k) ~lo:0 ~hi:(max 0 (limit - 1)) in
  match Det.int_in (sub "op") ~lo:0 ~hi:(op_count - 1) with
  | 0 ->
      (* Flip one byte to a guaranteed-different value. *)
      let b = Bytes.of_string s in
      let p = pos n "pos" in
      Bytes.set b p
        (Char.chr (Char.code (Bytes.get b p) lxor Det.int_in (sub "xor") ~lo:1 ~hi:255));
      Bytes.to_string b
  | 1 -> String.sub s 0 (pos n "cut")
  | 2 ->
      (* Zero a short run: hits length fields as often as payload. *)
      let b = Bytes.of_string s in
      let p = pos n "pos" in
      let len = min (Det.int_in (sub "len") ~lo:1 ~hi:4) (n - p) in
      Bytes.fill b p len '\x00';
      Bytes.to_string b
  | 3 ->
      (* Maximize a short run: oversized length fields. *)
      let b = Bytes.of_string s in
      let p = pos n "pos" in
      let len = min (Det.int_in (sub "len") ~lo:1 ~hi:4) (n - p) in
      Bytes.fill b p len '\xff';
      Bytes.to_string b
  | 4 ->
      (* Splice garbage bytes at an arbitrary offset. *)
      let p = pos (n + 1) "pos" in
      let glen = Det.int_in (sub "glen") ~lo:1 ~hi:32 in
      let garbage =
        String.init glen (fun i ->
            Char.chr (Det.int_in (sub (Printf.sprintf "g%d" i)) ~lo:0 ~hi:255))
      in
      String.sub s 0 p ^ garbage ^ String.sub s p (n - p)
  | 5 ->
      (* Rewrite the first version-shaped pair (0x03 0x01..0x03) to an
         arbitrary minor version; falls back to a flip if none exists. *)
      let b = Bytes.of_string s in
      let rec find i =
        if i + 1 >= n then None
        else if Bytes.get b i = '\x03' && Bytes.get b (i + 1) <= '\x03' then Some i
        else find (i + 1)
      in
      (match find 0 with
      | Some i -> Bytes.set b (i + 1) (Char.chr (Det.int_in (sub "minor") ~lo:4 ~hi:255))
      | None ->
          let p = pos n "pos" in
          Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor 0x80)));
      Bytes.to_string b
  | _ ->
      (* Duplicate a slice in place. *)
      let p = pos n "pos" in
      let len = min (Det.int_in (sub "len") ~lo:1 ~hi:32) (n - p) in
      String.sub s 0 (p + len) ^ String.sub s p (n - p)

(* --- Classification -------------------------------------------------------- *)

let decode target bytes =
  match target with
  | Handshake_flight -> Result.is_ok (Handshake_msg.read_all bytes)
  | Session_blob -> Result.is_ok (Session.of_bytes bytes)
  | Record_stream -> Result.is_ok (Record.read_all bytes)
  | Ticket_blob -> (
      match Ticket.unseal ~find_stek bytes with
      | Ok _ -> true
      | Error (Ticket.Bad_mac | Ticket.Unknown_key_name _) ->
          (* Framing survived; the cryptographic check is what failed. *)
          true
      | Error (Ticket.Too_short | Ticket.Corrupt_state _) -> false)

let classify ~key =
  let name, target, template =
    templates.(Det.int_in (key ^ "|tpl") ~lo:0 ~hi:(Array.length templates - 1))
  in
  let mutated = mutate ~key:(key ^ "|" ^ name) template in
  if decode target mutated then Fault.Protocol_violation else Fault.Malformed_response
