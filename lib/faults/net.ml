(* The resilient connection path: injected faults, bounded retries, and
   funnel accounting wrapped around a single underlying
   [Simnet.World.connect] thunk.

   The invariant everything here serves: *whether faults are enabled or
   not, the world-side thunk runs exactly once per probe, at the probe
   clock's unmodified time*. Three consequences follow:

   - a faulted attempt short-circuits before the world is touched, so
     the endpoint's DRBG streams (failure coin, slot pick, handshake
     randomness) advance exactly as in a fault-free run;
   - retry backoff accumulates on a local attempt clock ([elapsed]); the
     shared scan clock never moves, so no other observation shifts in
     time;
   - when retries exhaust, we still make one "shadow" world call and
     discard the result — the RNG draws a fault-free run would have
     spent on this probe are spent here too, keeping every subsequent
     observation byte-identical between fault-on and fault-off runs
     (only genuinely-failed probes differ, which is the point).

   World-level errors (No_such_domain / No_https / Connection_failed)
   are the simulation's ground truth, not injected noise; retrying them
   would mean a second world call and a desynced stream, so they are
   classified and final. *)

type t = {
  injector : Injector.t option;
  policy : Retry.policy;
  funnel : Funnel.t;
  breaker : Breaker.t option;
}

(* The breaker exists exactly when faults do: without an injector there
   are no retries to budget and the legacy single-attempt path must stay
   untouched. *)
let create ?injector ?(policy = Retry.default) ?funnel ?breaker () =
  {
    injector;
    policy;
    funnel = (match funnel with Some f -> f | None -> Funnel.create ());
    breaker =
      (match breaker with
      | Some _ as b -> if Option.is_some injector then b else None
      | None -> Option.map (fun _ -> Breaker.create ()) injector);
  }

let funnel t = t.funnel
let injector t = t.injector
let policy t = t.policy
let breaker t = t.breaker

let classify_error = function
  | Simnet.World.No_such_domain -> Fault.No_such_domain
  | Simnet.World.No_https -> Fault.No_https
  | Simnet.World.Connection_failed -> Fault.Connection_refused

(* Run one probe operation. [connect] performs the real world call;
   returns [Ok (outcome, attempts)] or [Error (fault, attempts)]. *)
let attempt t ~hostname ~now ~connect =
  let day = now / Simnet.Clock.day in
  let finish_real ?(feedback = fun _ -> ()) ~attempts ~slow () =
    match connect () with
    | Ok outcome ->
        feedback (Ok ());
        Funnel.record_success t.funnel ~day ~attempts ~slow;
        Ok (outcome, attempts)
    | Error e ->
        let f = classify_error e in
        feedback (Error f);
        Funnel.record_failure t.funnel ~day ~attempts f;
        Error (f, attempts)
  in
  match t.injector with
  | None -> finish_real ~attempts:1 ~slow:false ()
  | Some inj ->
      let p = t.policy in
      (* The breaker adapts the retry budget per operator: one attempt
         while open, the full policy budget otherwise. Consuming the
         budget and feeding the outcome back happen exactly once per
         probe, in probe order, so budgets are deterministic. *)
      let operator = Injector.operator_of inj ~hostname in
      let feedback, max_attempts =
        match (t.breaker, operator) with
        | Some b, Some op ->
            ( Breaker.record b ~operator:op,
              Breaker.attempts_allowed b ~operator:op
                ~max_attempts:p.Retry.max_attempts )
        | _ -> ((fun _ -> ()), p.Retry.max_attempts)
      in
      let jitter_key = Printf.sprintf "%s|%d" hostname now in
      let rec go ~attempt ~elapsed ~last =
        if attempt >= max_attempts || elapsed > p.Retry.deadline then begin
          (* Exhausted: the shadow call keeps world-side streams where a
             fault-free run would leave them; the probe never sees it. *)
          ignore (connect ());
          let f = Option.value last ~default:Fault.Connect_timeout in
          feedback (Error f);
          Funnel.record_failure t.funnel ~day ~attempts:attempt f;
          Error (f, attempt)
        end
        else
          match Injector.decide inj ~hostname ~time:(now + elapsed) ~attempt with
          | Injector.Pass -> finish_real ~feedback ~attempts:(attempt + 1) ~slow:false ()
          | Injector.Slow lat when elapsed + lat <= p.Retry.deadline ->
              finish_real ~feedback ~attempts:(attempt + 1) ~slow:true ()
          | Injector.Slow _ -> next ~attempt ~elapsed Fault.Slow_handshake
          | Injector.Fault f -> next ~attempt ~elapsed f
      and next ~attempt ~elapsed f =
        go ~attempt:(attempt + 1)
          ~elapsed:(elapsed + Retry.backoff t.policy ~key:jitter_key ~attempt)
          ~last:(Some f)
      in
      go ~attempt:0 ~elapsed:0 ~last:None
