(** The resilient connection path: fault injection + bounded retries +
    funnel accounting around a single world connect. The implementation
    header documents the stream-isolation invariant (exactly one real
    world call per probe, at unmodified virtual time). *)

type t

val create :
  ?injector:Injector.t ->
  ?policy:Retry.policy ->
  ?funnel:Funnel.t ->
  ?breaker:Breaker.t ->
  unit ->
  t
(** No [injector] means no injected faults and no retries — the legacy
    single-attempt path, byte-identical to pre-fault behavior. [funnel]
    lets serial runs share one funnel across probes; defaults to a fresh
    private one. [breaker] defaults to a fresh per-operator circuit
    breaker whenever an injector is present (and is forced off without
    one). *)

val funnel : t -> Funnel.t
val injector : t -> Injector.t option
val policy : t -> Retry.policy

val breaker : t -> Breaker.t option
(** The per-operator circuit breaker, present iff faults are injected. *)

val classify_error : Simnet.World.connect_error -> Fault.t

val attempt :
  t ->
  hostname:string ->
  now:int ->
  connect:(unit -> ('a, Simnet.World.connect_error) result) ->
  ('a * int, Fault.t * int) result
(** Run one probe operation; the [int] is the attempt count. [connect]
    is called exactly once (possibly as a discarded shadow call on
    retry exhaustion). *)
