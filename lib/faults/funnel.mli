(** Measurement-loss telemetry: per-scan-day counts of probes, attempts,
    retries, successes and per-cause losses — the live version of the
    paper's §3 funnel. Mutable and single-owner; parallel campaigns keep
    a funnel per shard and {!absorb} them after the join (sums only, so
    merge order cannot change totals). *)

type t

val create : unit -> t

val record_success : t -> day:int -> attempts:int -> slow:bool -> unit
(** One probe that produced an observation after [attempts] connection
    attempts; [slow] marks a slow-handshake draw that still beat the
    deadline. *)

val record_failure : t -> day:int -> attempts:int -> Fault.t -> unit
(** One probe lost to [fault] after [attempts] attempts. *)

val absorb : t -> t -> unit
(** [absorb dst src] adds [src]'s counts into [dst]. *)

type totals = {
  t_probes : int;
  t_attempts : int;
  t_retries : int;
  t_successes : int;
  t_recovered : int;  (** succeeded after at least one faulted attempt *)
  t_slow : int;
  t_losses : (Fault.t * int) list;  (** non-zero causes, in {!Fault.all} order *)
}

val days : t -> int list
(** Days with any recorded probe, ascending (absolute day indices). *)

val day_totals : t -> day:int -> totals
val totals : t -> totals

val lost : totals -> int
(** Total probes lost across all causes. *)

val to_lines : t -> string list
(** Deterministic line serialization for campaign checkpoints: equal
    funnels produce equal lines (days ascending, losses in {!Fault.all}
    order). *)

val of_lines : string list -> (t, string) result
(** Inverse of {!to_lines}; never raises on malformed input. *)
