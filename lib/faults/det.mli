(** Deterministic, order-independent draws for the fault layer: pure
    hashes of (seed, coordinates), so no decision depends on query
    order, worker count, or whether faults are enabled at all. *)

val u01 : string -> float
(** Uniform in [0,1), derived from SHA-256 of the key. *)

val int_in : string -> lo:int -> hi:int -> int
(** Uniform integer in [lo, hi] inclusive. Raises [Invalid_argument] on
    an empty range. *)
