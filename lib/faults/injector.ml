(* The fault schedule: given a hostname and a virtual instant, decide
   whether this connection attempt gets through, gets through slowly, or
   dies of an injected fault — deterministically.

   Every decision is a pure hash of (fault seed, endpoint, hostname,
   time, attempt) via {!Det}, never a stateful DRBG draw. That is the
   load-bearing design choice: the world's handshake and endpoint
   streams are untouched whether faults are on or off, decisions are
   identical no matter which parallel-campaign worker asks first, and
   the whole timeline is reproducible from the seed alone.

   Outage windows are scheduled per (endpoint, 6-hour epoch): each epoch
   independently draws "is there an outage", its start offset, and its
   duration (clamped to the epoch, so membership checks stay O(1) and
   order-independent). A window lasts minutes to hours — longer than any
   retry schedule, shorter than the gap to the next daily sweep — so
   retries inside it exhaust while tomorrow's scan succeeds, exactly the
   churn signature the paper's §3 funnel shows. *)

type decision = Pass | Slow of int | Fault of Fault.t

type t = {
  seed : string;
  profile : Profile.t;
  world : Simnet.World.t;
}

let create ?(seed = "faults") ~profile world = { seed; profile; world }
let profile t = t.profile

let outage_epoch = 6 * Simnet.Clock.hour

(* Is [ep] inside a scheduled outage window at [time]? Windows never
   cross epoch boundaries (duration is clamped), so only the current
   epoch needs checking. *)
let outage_at t ~(rates : Profile.rates) ~ep ~time =
  rates.Profile.outage_p > 0.0
  &&
  let epoch = time / outage_epoch in
  let key part = Printf.sprintf "%s|outage|%d|%d|%s" t.seed ep epoch part in
  Det.u01 (key "hit") < rates.Profile.outage_p
  &&
  let lo, hi = rates.Profile.outage_duration in
  let dur = Det.int_in (key "dur") ~lo ~hi in
  let epoch_start = epoch * outage_epoch in
  let start = epoch_start + Det.int_in (key "start") ~lo:0 ~hi:(outage_epoch - 1) in
  let finish = min (start + dur) (epoch_start + outage_epoch) in
  time >= start && time < finish

let operator_of t ~hostname =
  Option.map snd (Simnet.World.endpoint_info t.world hostname)

let endpoint_outage_at t ~hostname ~time =
  match Simnet.World.endpoint_info t.world hostname with
  | None -> false
  | Some (ep, operator) ->
      outage_at t ~rates:(Profile.rates_for t.profile ~operator) ~ep ~time

let decide t ~hostname ~time ~attempt =
  match Simnet.World.endpoint_info t.world hostname with
  | None ->
      (* The world will answer No_such_domain / No_https on its own;
         nothing to inject. *)
      Pass
  | Some (ep, operator) ->
      let rates = Profile.rates_for t.profile ~operator in
      if outage_at t ~rates ~ep ~time then Fault Fault.Endpoint_outage
      else begin
        let key kind =
          Printf.sprintf "%s|%s|%d|%s|%d|%d" t.seed kind ep hostname time attempt
        in
        (* One uniform draw walked through cumulative transient rates:
           the cheapest way to make the five fault kinds mutually
           exclusive per attempt. *)
        let u = Det.u01 (key "conn") in
        let below = ref 0.0 in
        let in_band p =
          below := !below +. p;
          u < !below
        in
        if in_band rates.Profile.timeout_p then Fault Fault.Connect_timeout
        else if in_band rates.Profile.reset_p then Fault Fault.Tcp_reset
        else if in_band rates.Profile.alert_p then Fault Fault.Tls_alert
        else if in_band rates.Profile.truncated_p then Fault Fault.Truncated_record
        else if in_band rates.Profile.byzantine_p then
          (* The peer answers with hostile bytes; synthesize and decode
             them to pick malformed vs. protocol-violation. Profiles with
             byzantine_p = 0 never reach this band, so their decision
             streams are untouched. *)
          Fault (Byzantine.classify ~key:(key "byz"))
        else if in_band rates.Profile.slow_p then begin
          let lo, hi = rates.Profile.slow_latency in
          Slow (Det.int_in (key "lat") ~lo ~hi)
        end
        else Pass
      end
