(** The deterministic structure-aware wire fuzzer: mutates canned valid
    transcripts with {!Byzantine.mutate} and drives them through every
    peer-facing decoder and engine entry point, recording any escaped
    exception or allocation-cap breach. A pure function of
    (seed, count) — same arguments, same inputs, so every escape is a
    permanent reproducer. *)

type escape = {
  e_target : string;
  e_input : string;  (** the exact bytes that were driven *)
  e_reason : string;  (** exception text, or the allocation-cap breach *)
}

type report = {
  executed : int;
  parsed : int;  (** drives the decoder accepted *)
  rejected : int;  (** drives rejected with a typed error *)
  escapes : escape list;
  by_target : (string * int) list;  (** drives per target, fuzzer order *)
}

val run :
  ?seed:string -> ?progress:(int -> unit) -> count:int -> unit -> report
(** Run [count] drives. [seed] defaults to ["wire-fuzz"]; [progress] is
    called with the number of drives completed after each one. *)

val hex_dump : string -> string
(** xxd-style offset/hex/ASCII rendering, for failure artifacts. *)

val render_escape : escape -> string
