(* Retry policy: how hard a probe tries before writing a loss into the
   funnel. Backoff is exponential with deterministic jitter, and all of
   it is accounted on the probe's private attempt clock — the shared
   scan clock never moves, so retries cannot shift the virtual time any
   other observation is made at. *)

type policy = {
  max_attempts : int; (* total attempts, first included *)
  base_backoff : int; (* seconds before the first retry *)
  multiplier : float; (* backoff growth per retry *)
  max_backoff : int; (* backoff cap, seconds *)
  deadline : int; (* give up once cumulative delay exceeds this *)
}

(* Three attempts with 2s/4s backoffs inside a one-minute deadline: the
   shape of a real probing fleet's per-target budget (cf. ZMap-driven
   scans, which bound per-host retransmissions the same way). *)
let default =
  { max_attempts = 3; base_backoff = 2; multiplier = 2.0; max_backoff = 30; deadline = 60 }

let no_retry =
  { max_attempts = 1; base_backoff = 0; multiplier = 1.0; max_backoff = 0; deadline = 30 }

(* Jitter in [0.5, 1.5): spreads a real fleet's retries; here it only
   needs to be deterministic, keyed by the probe's coordinates so two
   probes retrying the same host at different times decorrelate. *)
let backoff policy ~key ~attempt =
  if attempt < 0 then invalid_arg "Retry.backoff: negative attempt";
  let nominal =
    min
      (float_of_int policy.max_backoff)
      (float_of_int policy.base_backoff *. (policy.multiplier ** float_of_int attempt))
  in
  let jitter = 0.5 +. Det.u01 (Printf.sprintf "backoff|%s|%d" key attempt) in
  max 1 (int_of_float (nominal *. jitter))
