(* The deterministic structure-aware wire fuzzer: the executable proof
   of the totality invariant ("no peer-facing decoder ever raises, and
   none allocates unboundedly, on arbitrary bytes").

   Every iteration derives a key [seed|i], picks a target, mutates that
   target's canned valid wire blob with {!Byzantine.mutate} (byte flips,
   truncation, zeroed/maximized length fields, garbage splices, version
   rewrites, slice duplication — the same mutator the injector
   schedules), and drives the result through the real decoder or engine
   entry point. Two failure modes are recorded:

   - an exception escaping the drive (the totality violation the fuzzer
     exists to catch), and
   - a per-drive allocation beyond the target's cap (a hostile length
     field turning into an attacker-sized buffer).

   Everything is a pure function of (seed, count): re-running with the
   same arguments replays the same inputs, so any escape's hex dump is
   a permanent reproducer. *)

module Msg = Tls.Handshake_msg

type escape = {
  e_target : string;
  e_input : string; (* the exact bytes that were driven *)
  e_reason : string; (* exception text, or the allocation-cap breach *)
}

type report = {
  executed : int;
  parsed : int; (* drives the decoder accepted *)
  rejected : int; (* drives rejected with a typed error *)
  escapes : escape list;
  by_target : (string * int) list; (* drives per target, fuzzer order *)
}

(* --- Reproducer formatting ------------------------------------------------- *)

let hex_dump s =
  let b = Buffer.create (String.length s * 4) in
  let n = String.length s in
  let rec line off =
    if off < n then begin
      Printf.bprintf b "%08x  " off;
      let stop = min (off + 16) n in
      for i = off to off + 15 do
        if i < stop then Printf.bprintf b "%02x " (Char.code s.[i])
        else Buffer.add_string b "   ";
        if i - off = 7 then Buffer.add_char b ' '
      done;
      Buffer.add_char b ' ';
      for i = off to stop - 1 do
        let c = s.[i] in
        Buffer.add_char b (if c >= ' ' && c < '\x7f' then c else '.')
      done;
      Buffer.add_char b '\n';
      line (off + 16)
    end
  in
  line 0;
  Buffer.contents b

let render_escape e =
  Printf.sprintf "target: %s\nreason: %s\ninput (%d bytes):\n%s" e.e_target e.e_reason
    (String.length e.e_input) (hex_dump e.e_input)

(* --- The fuzz environment --------------------------------------------------
   Small-parameter engines (the simulation environment), built once per
   run from fixed seeds: engine-level targets need a live client and
   server, and small groups keep 100k drives fast. *)

type fuzz_env = {
  client_config : Tls.Config.client_config;
  server : Tls.Server.t;
  pending : Tls.Server.pending option; (* a full handshake mid-flight *)
  client_flight : string; (* valid [SH; Cert; SKE; SHD] for this env *)
  dhe_flight : string; (* same shape, DHE suite: the peer-supplied-group path *)
  cert_bytes : string;
  psk_blob : string;
}

let build_env () =
  let env = Tls.Config.sim_env ~seed:"wire-fuzz-env" () in
  let r = Crypto.Drbg.create ~seed:"wire-fuzz-pki" in
  let ca =
    Tls.Cert.self_signed ~curve:env.Tls.Config.pki_curve ~name:"Fuzz CA" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:1 r
  in
  let key = Crypto.Ecdsa.gen_keypair env.Tls.Config.pki_curve r in
  let cert =
    Tls.Cert.issue ca ~curve:env.Tls.Config.pki_curve ~subject:"fuzz.example" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:2
      ~pub:(Crypto.Ec.point_bytes env.Tls.Config.pki_curve (Crypto.Ecdsa.public_key key))
      r
  in
  let server =
    Tls.Server.create
      ~config:
        {
          Tls.Config.env;
          suites = Tls.Types.all_cipher_suites;
          issue_session_ids = true;
          session_cache = Some (Tls.Session_cache.create ~lifetime:3600 ~capacity:64);
          tickets =
            Some
              {
                Tls.Config.stek_manager =
                  Tls.Stek_manager.create ~policy:Tls.Stek_manager.Static
                    ~secret:"wire-fuzz-stek" ~now:0;
                lifetime_hint = 3600;
                accept_lifetime = 3600;
                reissue_on_resumption = true;
              };
          kex_cache = Tls.Kex_cache.create ();
          cert_chain = [ cert ];
          cert_key = key;
        }
      ~rng:(Crypto.Drbg.create ~seed:"wire-fuzz-server")
  in
  let client_config =
    {
      Tls.Config.cl_env = env;
      offer_suites = Tls.Types.all_cipher_suites;
      offer_ticket = true;
      root_store = Tls.Cert.empty_store ();
      check_certs = false;
      evaluate_trust = false;
      verify_ske = false;
    }
  in
  (* One real server flight (and a pending handshake) to mutate. *)
  let probe_client =
    Tls.Client.create ~config:client_config
      ~rng:(Crypto.Drbg.create ~seed:"wire-fuzz-probe")
      ()
  in
  let ch, _ =
    Tls.Client.hello probe_client ~now:100 ~hostname:"fuzz.example" ~offer:Tls.Client.Fresh
  in
  let client_flight, pending =
    match Tls.Server.handle_client_hello server ~now:100 ch with
    | Ok (Tls.Server.Negotiating (msgs, pending)) ->
        (String.concat "" (List.map Msg.to_bytes msgs), Some pending)
    | Ok (Tls.Server.Resuming (msgs, _, _)) ->
        (String.concat "" (List.map Msg.to_bytes msgs), None)
    | Error _ -> ("", None)
  in
  (* A hand-built DHE flight: mutating its explicit (p, g, Ys) drives
     the client's peer-supplied-group validation, the path where a
     hostile modulus once meant an exception or an unbounded pow_mod. *)
  let dhe_flight =
    let r = Crypto.Drbg.create ~seed:"wire-fuzz-dhe" in
    let group = env.Tls.Config.dh_group in
    String.concat ""
      (List.map Msg.to_bytes
         [
           Msg.Server_hello
             {
               sh_version = Tls.Types.TLS_1_2;
               sh_random = Crypto.Drbg.generate r Tls.Types.random_len;
               sh_session_id = "";
               sh_cipher_suite = Tls.Types.DHE_ECDSA_AES128_SHA256;
               sh_extensions = [ Tls.Extension.Renegotiation_info ];
             };
           Msg.Certificate [ Tls.Cert.to_bytes cert ];
           Msg.Server_key_exchange
             {
               ske_params =
                 Msg.Ske_dhe
                   {
                     dh_p = Crypto.Bignum.to_bytes_be (Crypto.Dh.group_p group);
                     dh_g = Crypto.Bignum.to_bytes_be (Crypto.Dh.group_g group);
                     dh_ys = Crypto.Drbg.generate r 8;
                   };
               ske_signature = Crypto.Drbg.generate r 64;
             };
           Msg.Server_hello_done;
         ])
  in
  let psk_rng = Crypto.Drbg.create ~seed:"wire-fuzz-psk" in
  let psk_blob =
    Tls.Tls13.seal_psk Byzantine.template_stek psk_rng
      {
        Tls.Tls13.psk = Crypto.Drbg.generate psk_rng 32;
        issued_at = 100;
        lifetime = 7 * 86400;
        max_early_data = 16384;
      }
  in
  {
    client_config;
    server;
    pending;
    client_flight;
    dhe_flight;
    cert_bytes = Tls.Cert.to_bytes cert;
    psk_blob;
  }

(* --- Targets ---------------------------------------------------------------
   Each target: a template to mutate, a drive that must be total, and an
   allocation cap. Parser caps are tight (decoded structures are bounded
   by input size); engine caps are looser (key exchange does real
   bignum arithmetic on small groups). *)

type target = {
  t_name : string;
  t_template : string;
  t_drive : string -> bool; (* true = accepted / parsed *)
  t_alloc_cap : string -> float; (* bytes allowed per drive, from input *)
}

(* Allocation accounting caveat: on OCaml 5 the runtime attributes
   minor-heap allocation to [Gc.allocated_bytes] only at collection
   boundaries, so a per-drive delta can absorb up to one minor heap of
   unrelated allocation. [run] shrinks the minor heap to keep that noise
   floor at 128 KiB; large (major-heap) allocations — the hostile-length
   preallocations the cap exists to catch — are counted exactly. *)
let fuzz_minor_heap_words = 16 * 1024

let parser_cap s = float_of_int ((512 * 1024) + (64 * String.length s))
let engine_cap s = float_of_int ((4 * 1024 * 1024) + (256 * String.length s))

let tpl name =
  let _, _, bytes =
    Array.to_list Byzantine.templates
    |> List.find (fun (n, _, _) -> String.equal n name)
  in
  bytes

let targets env =
  let client_state () =
    let client =
      Tls.Client.create ~config:env.client_config
        ~rng:(Crypto.Drbg.create ~seed:"wire-fuzz-client")
        ()
    in
    snd (Tls.Client.hello client ~now:100 ~hostname:"fuzz.example" ~offer:Tls.Client.Fresh)
  in
  [|
    {
      t_name = "handshake-flight";
      t_template = tpl "full-flight";
      t_drive = (fun s -> Result.is_ok (Msg.read_all s));
      t_alloc_cap = parser_cap;
    };
    {
      t_name = "client-hello";
      t_template = tpl "client-hello";
      t_drive = (fun s -> Result.is_ok (Msg.of_bytes s));
      t_alloc_cap = parser_cap;
    };
    {
      t_name = "abbreviated-flight";
      t_template = tpl "abbreviated-flight";
      t_drive = (fun s -> Result.is_ok (Msg.read_all s));
      t_alloc_cap = parser_cap;
    };
    {
      t_name = "record-stream";
      t_template = tpl "record-stream";
      t_drive = (fun s -> Result.is_ok (Tls.Record.read_all s));
      t_alloc_cap = parser_cap;
    };
    {
      t_name = "session-blob";
      t_template = tpl "session-blob";
      t_drive = (fun s -> Result.is_ok (Tls.Session.of_bytes s));
      t_alloc_cap = parser_cap;
    };
    {
      t_name = "ticket-blob";
      t_template = tpl "ticket-blob";
      t_drive =
        (fun s -> Result.is_ok (Tls.Ticket.unseal ~find_stek:Byzantine.find_stek s));
      t_alloc_cap = parser_cap;
    };
    {
      t_name = "tls13-psk";
      t_template = env.psk_blob;
      t_drive =
        (fun s -> Result.is_ok (Tls.Tls13.unseal_psk ~find_stek:Byzantine.find_stek s));
      t_alloc_cap = parser_cap;
    };
    {
      t_name = "certificate";
      t_template = env.cert_bytes;
      t_drive = (fun s -> Result.is_ok (Tls.Cert.of_bytes s));
      t_alloc_cap = parser_cap;
    };
    {
      t_name = "client-engine";
      t_template = env.client_flight;
      t_drive =
        (fun s ->
          (* The engine boundary: parse, then hand anything that parsed
             to the client's flight handler. Both stages must be total. *)
          match Msg.read_all s with
          | Error _ -> false
          | Ok msgs ->
              Result.is_ok (Tls.Client.handle_server_flight (client_state ()) msgs));
      t_alloc_cap = engine_cap;
    };
    {
      t_name = "client-engine-dhe";
      t_template = env.dhe_flight;
      t_drive =
        (fun s ->
          match Msg.read_all s with
          | Error _ -> false
          | Ok msgs ->
              Result.is_ok (Tls.Client.handle_server_flight (client_state ()) msgs));
      t_alloc_cap = engine_cap;
    };
    {
      t_name = "server-engine";
      t_template = tpl "client-hello";
      t_drive =
        (fun s ->
          match Msg.of_bytes s with
          | Error _ -> false
          | Ok msg ->
              Result.is_ok (Tls.Server.handle_client_hello env.server ~now:100 msg));
      t_alloc_cap = engine_cap;
    };
    {
      t_name = "server-cke";
      t_template =
        String.concat ""
          (List.map Msg.to_bytes
             [
               Msg.Client_key_exchange (String.make 8 '\x42');
               Msg.Finished (String.make Tls.Types.verify_data_len '\x17');
             ]);
      t_drive =
        (fun s ->
          match (env.pending, Msg.read_all s) with
          | None, _ | _, Error _ -> false
          | Some pending, Ok msgs ->
              Result.is_ok (Tls.Server.handle_client_flight pending ~now:100 msgs));
      t_alloc_cap = engine_cap;
    };
  |]

(* --- The driver ------------------------------------------------------------ *)

let run ?(seed = "wire-fuzz") ?(progress = fun _ -> ()) ~count () =
  let gc_before = Gc.get () in
  Gc.set { gc_before with Gc.minor_heap_size = fuzz_minor_heap_words };
  Fun.protect ~finally:(fun () -> Gc.set gc_before) @@ fun () ->
  let env = build_env () in
  let targets = targets env in
  let counts = Array.make (Array.length targets) 0 in
  let executed = ref 0 and parsed = ref 0 and rejected = ref 0 in
  let escapes = ref [] in
  for i = 0 to count - 1 do
    let key = Printf.sprintf "%s|%d" seed i in
    let ti = Det.int_in (key ^ "|target") ~lo:0 ~hi:(Array.length targets - 1) in
    let t = targets.(ti) in
    (* One raw-garbage drive in sixteen: mutation preserves most of the
       template's structure, so pure noise covers the far shore. *)
    let input =
      if Det.int_in (key ^ "|raw") ~lo:0 ~hi:15 = 0 then
        Crypto.Drbg.generate
          (Crypto.Drbg.create ~seed:(key ^ "|rawbytes"))
          (Det.int_in (key ^ "|rawlen") ~lo:0 ~hi:512)
      else Byzantine.mutate ~key t.t_template
    in
    counts.(ti) <- counts.(ti) + 1;
    incr executed;
    let before = Gc.allocated_bytes () in
    (match t.t_drive input with
    | true -> incr parsed
    | false -> incr rejected
    | exception e ->
        escapes :=
          { e_target = t.t_name; e_input = input; e_reason = Printexc.to_string e }
          :: !escapes);
    let allocated = Gc.allocated_bytes () -. before in
    if allocated > t.t_alloc_cap input then
      escapes :=
        {
          e_target = t.t_name;
          e_input = input;
          e_reason =
            Printf.sprintf "allocation cap exceeded: %.0f bytes for a %d-byte input"
              allocated (String.length input);
        }
        :: !escapes;
    progress !executed
  done;
  {
    executed = !executed;
    parsed = !parsed;
    rejected = !rejected;
    escapes = !escapes;
    by_target =
      Array.to_list (Array.mapi (fun i t -> (t.t_name, counts.(i))) targets);
  }
