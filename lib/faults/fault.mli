(** The measurement-loss taxonomy recorded on every failed probe and
    tallied per scan day by {!Funnel}. *)

type t =
  | No_such_domain
  | No_https
  | Connection_refused  (** the endpoint's baseline per-connection loss *)
  | Connect_timeout
  | Tcp_reset
  | Tls_alert
  | Truncated_record
  | Slow_handshake  (** latency draw exceeded the probe deadline *)
  | Endpoint_outage  (** whole-endpoint down-window *)
  | Malformed_response
      (** injected byzantine response whose bytes the typed decoders
          reject (corrupt fields, hostile lengths, truncated framing) *)
  | Protocol_violation
      (** injected byzantine response that parses cleanly but violates
          the protocol (wrong version, bad MAC, stale ticket) *)
  | Worker_crash
      (** a scanning worker exhausted its supervised restarts; the
          shard's remaining probes were abandoned *)
  | Unknown  (** archived row predating failure classification *)

val all : t list

val to_string : t -> string
(** Stable CSV token ([timeout], [reset], [outage], …). *)

val of_string : string -> t option

val is_injected : t -> bool
(** Injected faults are transient (retryable); world-level errors are
    ground truth and final. *)

val is_byzantine : t -> bool
(** The byzantine subset of injected faults: the peer answered, but with
    malformed or protocol-violating bytes. *)
