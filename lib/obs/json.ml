(* Minimal deterministic JSON for the observability layer. Emission is
   fully deterministic (callers hand us sorted fields; we add no
   whitespace variation), which is what lets two campaign runs be
   compared with [String.equal] on their metrics files. The parser is
   the strict recursive-descent subset the harness needs — objects,
   arrays, strings, numbers, booleans — mirroring [bench/json_io] but
   living in a library so the CLI's [metrics-report] can read the files
   back. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* --- Emitting ------------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Integers print without a fractional part so counter values survive a
   render/parse/render round trip byte-identically. *)
let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string v =
  let b = Buffer.create 1024 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Num f -> Buffer.add_string b (number_to_string f)
    | Str s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (indent + 2);
            go (indent + 2) item)
          items;
        Buffer.add_char b '\n';
        pad indent;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (indent + 2);
            escape_string b k;
            Buffer.add_string b ": ";
            go (indent + 2) item)
          fields;
        Buffer.add_char b '\n';
        pad indent;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* --- Parsing -------------------------------------------------------------- *)

let of_string s =
  let ( let* ) = Result.bind in
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Error (Printf.sprintf "%s at offset %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then begin
      advance ();
      Ok ()
    end
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      Ok v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    let* () = expect '"' in
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
            advance ();
            Ok (Buffer.contents b)
        | '\\' ->
            advance ();
            let* () =
              if !pos >= n then fail "unterminated escape"
              else
                match s.[!pos] with
                | '"' -> Buffer.add_char b '"'; Ok ()
                | '\\' -> Buffer.add_char b '\\'; Ok ()
                | '/' -> Buffer.add_char b '/'; Ok ()
                | 'n' -> Buffer.add_char b '\n'; Ok ()
                | 'r' -> Buffer.add_char b '\r'; Ok ()
                | 't' -> Buffer.add_char b '\t'; Ok ()
                | 'u' ->
                    if !pos + 4 >= n then fail "bad \\u escape"
                    else begin
                      let hex = String.sub s (!pos + 1) 4 in
                      match int_of_string_opt ("0x" ^ hex) with
                      | Some code when code < 0x80 ->
                          Buffer.add_char b (Char.chr code);
                          pos := !pos + 4;
                          Ok ()
                      | _ -> fail "bad \\u escape"
                    end
                | c -> fail (Printf.sprintf "bad escape '\\%c'" c)
            in
            advance ();
            loop ()
        | c ->
            Buffer.add_char b c;
            advance ();
            loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Ok f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' ->
        let* s = parse_string () in
        Ok (Str s)
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Ok (Obj [])
        end
        else
          let rec members acc =
            skip_ws ();
            let* k = parse_string () in
            skip_ws ();
            let* () = expect ':' in
            let* v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Ok (Obj (List.rev ((k, v) :: acc)))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Ok (List [])
        end
        else
          let rec elements acc =
            let* v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Ok (List (List.rev (v :: acc)))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ ->
        let* f = parse_number () in
        Ok (Num f)
    | None -> fail "unexpected end of input"
  in
  let* v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content" else Ok v

(* --- Accessors ------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_int = function Num f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_obj = function Obj fields -> Some fields | _ -> None
