(* The bundle the rest of the codebase passes around: one metrics
   registry plus one trace collector. Everything that accepts telemetry
   takes a [Recorder.t option] — [None] costs a single option match on
   the hot path and guarantees byte-identical behaviour with telemetry
   off, because a recorder only ever *reads* simulation state (it never
   draws from a DRBG or advances a clock). *)

type t = { metrics : Metrics.t; trace : Trace.t; wall : bool }

let create ?(wall = false) () = { metrics = Metrics.create (); trace = Trace.create ~wall (); wall }

let metrics t = t.metrics
let trace t = t.trace
let wall_enabled t = t.wall

let incr t name = Metrics.incr t.metrics name
let add t name n = Metrics.add t.metrics name n
let gauge_max t name v = Metrics.gauge_max t.metrics name v
let observe t name ~bounds v = Metrics.observe t.metrics name ~bounds v
let span t ~name ?attrs ~now f = Trace.timed t.trace ~name ?attrs ~now f

let merge dst src =
  Metrics.merge dst.metrics src.metrics;
  Trace.merge dst.trace src.trace

(* Option-friendly variants for instrumentation sites: telemetry off
   means a recorder is simply absent. *)
let incr_opt o name = Option.iter (fun t -> incr t name) o
let add_opt o name n = Option.iter (fun t -> add t name n) o
let gauge_max_opt o name v = Option.iter (fun t -> gauge_max t name v) o
let observe_opt o name ~bounds v = Option.iter (fun t -> observe t name ~bounds v) o

let span_opt o ~name ?attrs ~now f =
  match o with None -> f () | Some t -> span t ~name ?attrs ~now f

(* A point event on the simulated timeline, rendered as a zero-duration
   span: handshake phases happen "between ticks" (the virtual clock does
   not advance inside a handshake), so their count and placement is the
   signal, not their duration. *)
let event t ~name ?attrs ~at () =
  Trace.record t.trace ~name ?attrs ~sim_start:at ~sim_end:at ()

let event_opt o ~name ?attrs ~at () = Option.iter (fun t -> event t ~name ?attrs ~at ()) o

let metrics_json_string t = Metrics.to_json_string t.metrics
let trace_json_string t = Trace.to_json_string t.trace
