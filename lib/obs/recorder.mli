(** A metrics registry bundled with a trace collector — the value the
    scanner, campaign runners and CLI thread around. Instrumentation
    sites take a [t option]; [None] (telemetry off) is free and
    guaranteed not to perturb the simulation, since recorders only read
    state. *)

type t

val create : ?wall:bool -> unit -> t
(** [wall] (default false) enables host-clock span timing — see
    {!Trace.create}. *)

val metrics : t -> Metrics.t
val trace : t -> Trace.t
val wall_enabled : t -> bool

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val gauge_max : t -> string -> int -> unit
val observe : t -> string -> bounds:int array -> int -> unit

val span :
  t -> name:string -> ?attrs:(string * string) list -> now:(unit -> int) -> (unit -> 'a) -> 'a

val merge : t -> t -> unit
(** Absorb a shard recorder: metrics and trace aggregates merge
    order-independently. *)

(** Option-friendly variants used at instrumentation sites. *)

val incr_opt : t option -> string -> unit
val add_opt : t option -> string -> int -> unit
val gauge_max_opt : t option -> string -> int -> unit
val observe_opt : t option -> string -> bounds:int array -> int -> unit

val span_opt :
  t option ->
  name:string ->
  ?attrs:(string * string) list ->
  now:(unit -> int) ->
  (unit -> 'a) ->
  'a

val event : t -> name:string -> ?attrs:(string * string) list -> at:int -> unit -> unit
(** A point on the simulated timeline (zero-duration span): handshake
    phases happen between clock ticks, so placement and count are the
    signal. *)

val event_opt :
  t option -> name:string -> ?attrs:(string * string) list -> at:int -> unit -> unit

val metrics_json_string : t -> string
val trace_json_string : t -> string
