(** Minimal deterministic JSON (emit + strict parse) for observability
    artifacts. Emission adds no whitespace variation and prints integral
    numbers without a fractional part, so equal values render to equal
    bytes — the property the metrics-determinism tests compare. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t

val to_string : t -> string
(** Pretty-printed with two-space indentation and a trailing newline;
    deterministic for equal values. *)

val of_string : string -> (t, string) result
(** Strict parse of the subset {!to_string} emits (plus arbitrary
    whitespace); [Error] names the offset of the first problem. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_obj : t -> (string * t) list option
