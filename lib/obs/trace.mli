(** Aggregated trace spans over the scanner's hot paths. Spans aggregate
    on ingestion by (name, attributes): raw-span logs would dwarf the
    campaign archive. Aggregates merge order-independently (sums and
    min/max), like {!Metrics}. Simulated-clock durations are always
    recorded and deterministic; host-clock ([wall]) durations are opt-in
    and omitted from the rendering when disabled. *)

type t

val create : ?wall:bool -> unit -> t
(** [wall] (default false) additionally accumulates host-clock
    nanoseconds per span — inherently nondeterministic, so the
    deterministic artifacts keep it off. *)

val wall_enabled : t -> bool

val record :
  t ->
  name:string ->
  ?attrs:(string * string) list ->
  sim_start:int ->
  sim_end:int ->
  ?wall_ns:float ->
  unit ->
  unit

val timed : t -> name:string -> ?attrs:(string * string) list -> now:(unit -> int) -> (unit -> 'a) -> 'a
(** Run the thunk as one span: simulated duration from [now] read before
    and after (the span is recorded even if the thunk raises), host
    duration measured only when this collector has [wall] on. *)

val merge : t -> t -> unit

type span_stat = {
  span_name : string;
  span_attrs : (string * string) list;  (** canonically sorted *)
  span_count : int;
  span_sim_total : int;
  span_wall_ns : float;  (** 0 unless the collector has [wall] on *)
}

val stats : t -> span_stat list
(** Aggregated spans in key order, for programmatic consumers (the bench
    derives per-shard utilization from [campaign.shard] spans) — the
    same data {!to_json} renders. *)

val schema : string
val to_json : t -> Json.t
val to_json_string : t -> string
val equal : t -> t -> bool
