(** Deterministic metrics registry: counters, gauges and fixed-bucket
    histograms over the simulated timeline. Counters and histogram cells
    merge by addition and gauges by maximum — commutative and
    associative, so per-shard registries merged in any order (at any
    worker count) produce the registry a single worker would have. The
    rendering sorts instrument names: equal registries render to equal
    bytes. *)

type t

val create : unit -> t

val incr : t -> string -> unit
val add : t -> string -> int -> unit

val gauge_max : t -> string -> int -> unit
(** Set-to-maximum semantics, on update and on merge alike — the only
    gauge the merge laws allow. *)

val observe : t -> string -> bounds:int array -> int -> unit
(** Record a histogram observation. [bounds] are ascending inclusive
    upper bounds; values above the last bound land in an open overflow
    bucket. Raises [Invalid_argument] if [name] was previously observed
    with different bounds. *)

val counter_value : t -> string -> int
(** 0 when the counter does not exist. *)

val gauge_value : t -> string -> int option

val merge : t -> t -> unit
(** [merge dst src] absorbs [src] into [dst]. Raises [Invalid_argument]
    on an instrument-kind or histogram-bounds clash. *)

val schema : string

val to_json : t -> Json.t
val to_json_string : t -> string
val equal : t -> t -> bool
