(* Structured trace spans over the scanner's hot paths, aggregated.

   A raw-span log for a production-scale campaign (millions of probes)
   would dwarf the observation archive it describes, so spans aggregate
   on ingestion: the key is (span name, sorted attributes) and the value
   is {count, total/min/max simulated duration, accumulated host-clock
   nanoseconds}. Aggregates merge by addition (count, totals) and
   min/max — commutative and associative, so shard traces merge
   order-independently like the metrics registry.

   Two clocks:

   - the *simulated* clock (integer seconds, passed in by the caller) is
     deterministic and always recorded; span durations on it reflect the
     campaign schedule (a scan day spans 90 virtual minutes between its
     two sweeps, a probe spans 0 — the virtual clock does not advance
     inside a handshake);
   - the *host* clock ([Unix.gettimeofday], best-effort monotonic) is
     opt-in per collector ([wall = true]) because it is inherently
     nondeterministic; with it off (the default) the rendered trace is
     byte-identical across runs and worker counts of the same campaign
     mode, and the wall_ns field is omitted entirely. *)

type agg = {
  mutable count : int;
  mutable sim_total : int;
  mutable sim_min : int;
  mutable sim_max : int;
  mutable wall_ns : float; (* meaningful only when the collector timed walls *)
}

type key = string * (string * string) list

type t = {
  tbl : (key, agg) Hashtbl.t;
  wall : bool; (* record host-clock durations (nondeterministic) *)
}

let create ?(wall = false) () = { tbl = Hashtbl.create 64; wall }
let wall_enabled t = t.wall

let canonical_attrs attrs = List.sort compare attrs

let record t ~name ?(attrs = []) ~sim_start ~sim_end ?(wall_ns = 0.0) () =
  if sim_end < sim_start then invalid_arg "Obs.Trace.record: span ends before it starts";
  let d = sim_end - sim_start in
  let key = (name, canonical_attrs attrs) in
  match Hashtbl.find_opt t.tbl key with
  | Some a ->
      a.count <- a.count + 1;
      a.sim_total <- a.sim_total + d;
      if d < a.sim_min then a.sim_min <- d;
      if d > a.sim_max then a.sim_max <- d;
      if t.wall then a.wall_ns <- a.wall_ns +. wall_ns
  | None ->
      Hashtbl.replace t.tbl key
        {
          count = 1;
          sim_total = d;
          sim_min = d;
          sim_max = d;
          wall_ns = (if t.wall then wall_ns else 0.0);
        }

(* Time [f] as one span: simulated duration from the [now] closure read
   before and after, host duration only when this collector opted in. *)
let timed t ~name ?attrs ~now f =
  let sim_start = now () in
  let w0 = if t.wall then Unix.gettimeofday () else 0.0 in
  let finally () =
    let wall_ns = if t.wall then (Unix.gettimeofday () -. w0) *. 1e9 else 0.0 in
    record t ~name ?attrs ~sim_start ~sim_end:(now ()) ~wall_ns ()
  in
  match f () with
  | v ->
      finally ();
      v
  | exception e ->
      finally ();
      raise e

let merge dst src =
  Hashtbl.iter
    (fun key (s : agg) ->
      match Hashtbl.find_opt dst.tbl key with
      | Some d ->
          d.count <- d.count + s.count;
          d.sim_total <- d.sim_total + s.sim_total;
          if s.sim_min < d.sim_min then d.sim_min <- s.sim_min;
          if s.sim_max > d.sim_max then d.sim_max <- s.sim_max;
          d.wall_ns <- d.wall_ns +. s.wall_ns
      | None ->
          Hashtbl.replace dst.tbl key
            {
              count = s.count;
              sim_total = s.sim_total;
              sim_min = s.sim_min;
              sim_max = s.sim_max;
              wall_ns = s.wall_ns;
            })
    src.tbl

let schema = "tlsharm-obs-trace/1"

let sorted_keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort compare

type span_stat = {
  span_name : string;
  span_attrs : (string * string) list;
  span_count : int;
  span_sim_total : int;
  span_wall_ns : float;
}

let stats t =
  List.map
    (fun ((name, attrs) as key) ->
      let a = Hashtbl.find t.tbl key in
      {
        span_name = name;
        span_attrs = attrs;
        span_count = a.count;
        span_sim_total = a.sim_total;
        span_wall_ns = a.wall_ns;
      })
    (sorted_keys t)

let to_json t =
  let spans =
    List.map
      (fun ((name, attrs) as key) ->
        let a = Hashtbl.find t.tbl key in
        Json.Obj
          ([
             ("name", Json.Str name);
             ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs));
             ("count", Json.int a.count);
             ("sim_total_s", Json.int a.sim_total);
             ("sim_min_s", Json.int a.sim_min);
             ("sim_max_s", Json.int a.sim_max);
           ]
          @ if t.wall then [ ("wall_ns", Json.Num a.wall_ns) ] else []))
      (sorted_keys t)
  in
  Json.Obj [ ("schema", Json.Str schema); ("spans", Json.List spans) ]

let to_json_string t = Json.to_string (to_json t)
let equal a b = String.equal (to_json_string a) (to_json_string b)
