(* Crypto-kernel call counters.

   The expensive asymmetric kernels (Montgomery exponentiation, EC
   scalar multiplication, X25519) are the simulation's hot floor — the
   ROADMAP's perf PRs need to know how many of each a campaign executes
   before they can claim to have made one cheaper. The kernels live far
   below any place a registry could be threaded to, so they bump global
   [Atomic] counters instead: increments commute, so the totals are
   identical at any worker count, and the counters stay deterministic
   because every counted call is schedule-determined (one pow per DH
   keypair, one scalar mult per ECDHE share, ...) — DRBG rejection
   sampling retries draw bytes, not kernel calls.

   Only the optimized kernels count; the retained seed-era [Reference]
   implementations are test/bench-only and stay silent. Callers take a
   {!snapshot} before and after a region and publish the {!diff} into a
   {!Metrics} registry under [kernel.*]. *)

type counter = { c_name : string; cell : int Atomic.t }

let make name = { c_name = name; cell = Atomic.make 0 }

let pow_mod = make "pow_mod"
let pow_mod_fixed = make "pow_mod_fixed"
let ec_scalar_mult = make "ec_scalar_mult"
let ec_scalar_mult_base = make "ec_scalar_mult_base"
let x25519_mult = make "x25519_mult"

(* Fixed registration order = fixed render order. *)
let all = [ pow_mod; pow_mod_fixed; ec_scalar_mult; ec_scalar_mult_base; x25519_mult ]

let bump c = Atomic.incr c.cell

let snapshot () = List.map (fun c -> (c.c_name, Atomic.get c.cell)) all

let diff ~before ~after =
  List.map
    (fun (name, b) ->
      let a = Option.value ~default:b (List.assoc_opt name after) in
      (name, a - b))
    before

(* Publish a snapshot diff as [kernel.*] counters. *)
let add_to_metrics metrics counts =
  List.iter (fun (name, n) -> Metrics.add metrics ("kernel." ^ name) n) counts
