(** Global call counters for the expensive asymmetric crypto kernels.
    The kernels sit far below anywhere a registry can be threaded, so
    they bump process-wide [Atomic] counters; increments commute, so
    totals are identical at any worker count. Callers snapshot around a
    region and publish the diff as [kernel.*] counters. *)

type counter

val pow_mod : counter
val pow_mod_fixed : counter
val ec_scalar_mult : counter
val ec_scalar_mult_base : counter
val x25519_mult : counter

val bump : counter -> unit

val snapshot : unit -> (string * int) list
(** Current values, in fixed registration order. *)

val diff : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-counter deltas between two snapshots. *)

val add_to_metrics : Metrics.t -> (string * int) list -> unit
(** Publish a {!diff} into a registry as [kernel.<name>] counters. *)
