(* Deterministic metrics registry: counters, gauges and fixed-bucket
   histograms, designed so that per-shard registries merge into exactly
   the registry a single-worker run would have produced.

   The determinism rules:

   - counters and histogram cells merge by addition, gauges by maximum —
     all commutative and associative, so the shard-merge order (and the
     worker count behind it) cannot change the result;
   - histogram bucket bounds are fixed at the first observation and must
     agree at every later observation and merge — a mismatch is a
     programming error ([Invalid_argument]), never a silent re-bucket;
   - rendering sorts instrument names, so equal registries render to
     equal bytes regardless of insertion order.

   Values are plain ints on the simulated timeline (counts, seconds);
   nothing here reads a wall clock — the optional host-clock side of the
   observability layer lives in {!Trace} and is excluded from the
   deterministic artifacts unless explicitly enabled. *)

type hist = {
  bounds : int array; (* ascending upper bounds; last bucket is open *)
  counts : int array; (* length = Array.length bounds + 1 *)
  mutable h_sum : int;
}

type value = Counter of int ref | Gauge of int ref | Hist of hist

type t = { tbl : (string, value) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Hist _ -> "histogram"

let clash name existing wanted =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S is a %s, not a %s" name (kind_name existing) wanted)

let add t name n =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter r) -> r := !r + n
  | Some v -> clash name v "counter"
  | None -> Hashtbl.replace t.tbl name (Counter (ref n))

let incr t name = add t name 1

let gauge_max t name v =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge r) -> if v > !r then r := v
  | Some existing -> clash name existing "gauge"
  | None -> Hashtbl.replace t.tbl name (Gauge (ref v))

let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe t name ~bounds v =
  match Hashtbl.find_opt t.tbl name with
  | Some (Hist h) ->
      if h.bounds <> bounds then
        invalid_arg (Printf.sprintf "Obs.Metrics: histogram %S bounds changed" name);
      h.counts.(bucket_index h.bounds v) <- h.counts.(bucket_index h.bounds v) + 1;
      h.h_sum <- h.h_sum + v
  | Some existing -> clash name existing "histogram"
  | None ->
      let h = { bounds = Array.copy bounds; counts = Array.make (Array.length bounds + 1) 0; h_sum = 0 } in
      h.counts.(bucket_index h.bounds v) <- 1;
      h.h_sum <- v;
      Hashtbl.replace t.tbl name (Hist h)

let counter_value t name =
  match Hashtbl.find_opt t.tbl name with Some (Counter r) -> !r | _ -> 0

let gauge_value t name =
  match Hashtbl.find_opt t.tbl name with Some (Gauge r) -> Some !r | _ -> None

(* Merge [src] into [dst]. Counters and histogram cells add, gauges take
   the maximum; both are commutative and associative, which the qcheck
   suite verifies on random registries. *)
let merge dst src =
  Hashtbl.iter
    (fun name v ->
      match (v, Hashtbl.find_opt dst.tbl name) with
      | Counter s, None -> Hashtbl.replace dst.tbl name (Counter (ref !s))
      | Counter s, Some (Counter d) -> d := !d + !s
      | Gauge s, None -> Hashtbl.replace dst.tbl name (Gauge (ref !s))
      | Gauge s, Some (Gauge d) -> if !s > !d then d := !s
      | Hist s, None ->
          Hashtbl.replace dst.tbl name
            (Hist { bounds = Array.copy s.bounds; counts = Array.copy s.counts; h_sum = s.h_sum })
      | Hist s, Some (Hist d) ->
          if d.bounds <> s.bounds then
            invalid_arg (Printf.sprintf "Obs.Metrics: histogram %S bounds differ across merge" name);
          Array.iteri (fun i n -> d.counts.(i) <- d.counts.(i) + n) s.counts;
          d.h_sum <- d.h_sum + s.h_sum
      | s, Some d -> clash name d (kind_name s))
    src.tbl

let sorted_names t filter =
  Hashtbl.fold (fun name v acc -> if filter v then name :: acc else acc) t.tbl []
  |> List.sort compare

let schema = "tlsharm-obs/1"

let to_json t =
  let counters =
    List.map
      (fun name -> (name, Json.int (counter_value t name)))
      (sorted_names t (function Counter _ -> true | _ -> false))
  in
  let gauges =
    List.filter_map
      (fun name -> Option.map (fun v -> (name, Json.int v)) (gauge_value t name))
      (sorted_names t (function Gauge _ -> true | _ -> false))
  in
  let hists =
    List.map
      (fun name ->
        match Hashtbl.find t.tbl name with
        | Hist h ->
            ( name,
              Json.Obj
                [
                  ("bounds", Json.List (Array.to_list (Array.map Json.int h.bounds)));
                  ("counts", Json.List (Array.to_list (Array.map Json.int h.counts)));
                  ("sum", Json.int h.h_sum);
                ] )
        | _ -> assert false)
      (sorted_names t (function Hist _ -> true | _ -> false))
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj hists);
    ]

let to_json_string t = Json.to_string (to_json t)

(* Structural equality through the canonical rendering: equal bytes is
   exactly the guarantee the determinism tests need. *)
let equal a b = String.equal (to_json_string a) (to_json_string b)
